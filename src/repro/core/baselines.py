"""The evaluation baselines of §6.

* :class:`CentralizedSystem` — "it still uses our middleware but the
  middleware simply forwards requests to the single database and does not
  perform any concurrency control, writeset retrieval, etc."  Speaks the
  same wire protocol, so the unmodified SI-Rep driver connects to it.

* :class:`TableLockSystem` — a reimplementation of the replication
  protocol of [20] (Jiménez-Peris et al., ICDCS 2002) as described in
  §6.3: clients submit *whole transactions* as parametrised procedure
  calls that pre-declare the tables they access; the request is multicast
  in total order; every replica enqueues the transaction's *table-level*
  locks in delivery order; one replica (here: the client's local one)
  executes the SQL, extracts the writeset, and multicasts it; remote
  replicas apply it once their table locks are granted.  Two messages per
  transaction, one client round trip — but coarse-grained locking.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from repro.core import protocol
from repro.errors import ReproError
from repro.gcs import DiscoveryService, GcsConfig, GroupBus, Message, ViewChange
from repro.net import LatencyModel, Network
from repro.net.network import ChannelClosed
from repro.sim import Event, Resource, Simulator
from repro.sim.sync import OneShot
from repro.storage import Database
from repro.storage.engine import CostModel


# ---------------------------------------------------------------------------
# Centralized baseline
# ---------------------------------------------------------------------------


class CentralizedSystem:
    """One database, one passthrough middleware, same client protocol."""

    def __init__(
        self,
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        with_disk: bool = False,
        net_base_latency: float = 0.0002,
        net_jitter: float = 0.0001,
    ):
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim,
            latency=LatencyModel(
                base=net_base_latency, jitter=net_jitter, rng=self.sim.rng("net")
            ),
        )
        self.discovery = DiscoveryService(self.sim)
        cpu = Resource(self.sim, "central.cpu")
        disk = Resource(self.sim, "central.disk") if with_disk else None
        self.db = Database(
            self.sim,
            name="central",
            cost_model=cost_model,
            cpu=cpu if cost_model else None,
            disk=disk,
        )
        self.host = self.network.register("central")
        self.discovery.register(self.host.address)
        self._gids = itertools.count(1)
        self._client_count = 0
        self.sim.spawn(self._accept_loop(), name="central.accept", daemon=True)

    def load_schema(self, ddl_statements: Iterable[str]) -> None:
        for sql in ddl_statements:
            self.db.run_ddl(sql)

    def bulk_load(self, table: str, rows: list[dict]) -> None:
        self.db.bulk_load(table, rows)

    def new_client_host(self, name: Optional[str] = None):
        self._client_count += 1
        return self.network.register(name or f"client-{self._client_count}")

    def _accept_loop(self) -> Generator[Any, Any, None]:
        while True:
            chan = yield self.host.accept()
            self.sim.spawn(self._session(chan), name="central.session", daemon=True)

    def _session(self, chan) -> Generator[Any, Any, None]:
        txn = None
        while True:
            try:
                request = yield from chan.recv()
            except ChannelClosed:
                if txn is not None and txn.active:
                    self.db.abort(txn)
                return
            try:
                if isinstance(request, protocol.ExecuteReq):
                    if request.sql.lstrip().upper().startswith("CREATE"):
                        self.db.run_ddl(request.sql)
                        chan.send(protocol.ExecuteResp(request.seq, ok=True))
                        continue
                    if txn is None or not txn.active:
                        txn = self.db.begin(gid=f"central:g{next(self._gids)}")
                    result = yield from self.db.execute(
                        txn, request.sql, request.params
                    )
                    chan.send(
                        protocol.ExecuteResp(
                            request.seq,
                            ok=True,
                            gid=txn.gid,
                            rows=result.rows,
                            columns=result.columns,
                            rowcount=result.rowcount,
                        )
                    )
                elif isinstance(request, protocol.CommitReq):
                    if txn is not None and txn.active:
                        yield from self.db.commit(txn)
                    txn = None
                    chan.send(protocol.CommitResp(request.seq, protocol.COMMITTED))
                elif isinstance(request, protocol.RollbackReq):
                    if txn is not None and txn.active:
                        self.db.abort(txn)
                    txn = None
                    chan.send(protocol.RollbackResp(request.seq))
                else:
                    raise ReproError(f"unsupported request {request!r}")
            except Exception as err:  # noqa: BLE001 - marshal to client
                if txn is not None and txn.active:
                    self.db.abort(txn)
                txn = None
                info = protocol.marshal_error(err)
                if isinstance(request, protocol.ExecuteReq):
                    chan.send(protocol.ExecuteResp(request.seq, ok=False, error=info))
                else:
                    chan.send(
                        protocol.CommitResp(request.seq, protocol.ABORTED, error=info)
                    )


# ---------------------------------------------------------------------------
# The protocol of [20]: table-level locks, whole-transaction requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Procedure:
    """A pre-registered transaction program.

    ``tables`` must list every table the program may touch — the [20]
    protocol's defining requirement.  ``statements`` maps the call
    parameters to the SQL statements to run.  ``lock_tables`` (optional)
    narrows the lock set per call from the parameters; the analysis in
    [20] determines the accessed tables of each invocation, so a program
    over 10 tables that touches 3 per call only locks those 3.
    """

    name: str
    tables: tuple[str, ...]
    statements: Callable[[tuple], list[tuple[str, tuple]]]
    readonly: bool = False
    lock_tables: Optional[Callable[[tuple], tuple]] = None

    def locks_for(self, params: tuple) -> tuple[str, ...]:
        if self.lock_tables is not None:
            return tuple(self.lock_tables(params))
        return self.tables


class _LockRequest:
    __slots__ = ("rid", "tables", "granted", "_missing")

    def __init__(self, rid: str, tables: tuple[str, ...]):
        self.rid = rid
        self.tables = tables
        self.granted = Event()
        self._missing = len(tables)


class OrderedTableLocks:
    """Table locks granted strictly in enqueue (delivery) order.

    A request enters the FIFO queue of every table it needs atomically;
    it is granted when it heads all of them.  Ordered atomic enqueue
    makes the scheme deadlock-free across replicas.
    """

    def __init__(self) -> None:
        self._queues: dict[str, deque[_LockRequest]] = {}

    def enqueue(self, request: _LockRequest) -> None:
        heads = 0
        for table in request.tables:
            queue = self._queues.setdefault(table, deque())
            queue.append(request)
            if queue[0] is request:
                heads += 1
        request._missing = len(request.tables) - heads
        if request._missing == 0:
            request.granted.set(None)

    def release(self, request: _LockRequest) -> None:
        for table in request.tables:
            queue = self._queues[table]
            assert queue[0] is request, "release out of grant order"
            queue.popleft()
            if queue:
                head = queue[0]
                head._missing -= 1
                if head._missing == 0:
                    head.granted.set(None)

    def waiting(self) -> int:
        return sum(max(0, len(q) - 1) for q in self._queues.values())


class _TableLockReplica:
    """One middleware/DB replica pair of the [20] system."""

    def __init__(self, system: "TableLockSystem", index: int):
        self.system = system
        self.sim = system.sim
        self.index = index
        self.name = f"TL{index}"
        cpu = Resource(self.sim, f"{self.name}.cpu")
        disk = Resource(self.sim, f"{self.name}.disk") if system.with_disk else None
        cost_model = system.cost_model(index) if system.cost_model else None
        self.db = Database(
            self.sim,
            name=self.name,
            cost_model=cost_model,
            cpu=cpu if cost_model else None,
            disk=disk,
        )
        self.locks = OrderedTableLocks()
        self.member = system.bus.join(self.name)
        self.host = system.network.register(self.name)
        system.discovery.register(self.host.address)
        #: rid -> waiter for the client response at the origin replica
        self._pending: dict[str, OneShot] = {}
        #: rid -> writeset waiter at remote replicas
        self._ws_events: dict[str, Event] = {}
        self._requests: dict[str, _LockRequest] = {}
        self.sim.spawn(self._deliver_loop(), name=f"{self.name}.deliver", daemon=True)
        self.sim.spawn(self._accept_loop(), name=f"{self.name}.accept", daemon=True)

    # -- GCS side -----------------------------------------------------------------

    def _deliver_loop(self) -> Generator[Any, Any, None]:
        while True:
            item = yield self.member.deliver()
            if isinstance(item, ViewChange):
                continue
            assert isinstance(item, Message)
            kind = item.payload[0]
            if kind == "req":
                _k, rid, proc_name, params, origin = item.payload
                proc = self.system.procedures[proc_name]
                request = _LockRequest(rid, proc.locks_for(params))
                self._requests[rid] = request
                self.locks.enqueue(request)  # in delivery order: deadlock-free
                self.sim.spawn(
                    self._run_transaction(rid, proc, params, origin),
                    name=f"{self.name}.run({rid})",
                    daemon=True,
                )
            elif kind == "ws":
                _k, rid, writeset = item.payload
                event = self._ws_events.setdefault(rid, Event())
                event.set(writeset)

    def _run_transaction(self, rid, proc, params, origin) -> Generator[Any, Any, None]:
        request = self._requests.pop(rid)
        yield request.granted.wait()
        try:
            if origin == self.name:
                rows = yield from self._execute_and_broadcast(rid, proc, params)
                waiter = self._pending.pop(rid, None)
                if waiter is not None:
                    waiter.resolve(rows)
            else:
                event = self._ws_events.setdefault(rid, Event())
                writeset = yield event.wait()
                self._ws_events.pop(rid, None)
                if writeset:  # empty = read-only or aborted upstream
                    txn = self.db.begin(gid=rid, remote=True)
                    yield from self.db.apply_writeset(txn, writeset)
                    yield from self.db.commit(txn)
        finally:
            self.locks.release(request)

    def _execute_and_broadcast(self, rid, proc, params) -> Generator[Any, Any, Any]:
        txn = self.db.begin(gid=rid)
        rows = None
        for sql, sql_params in proc.statements(params):
            result = yield from self.db.execute(txn, sql, sql_params)
            if result.rows is not None:
                rows = result.rows
        writeset = self.db.get_writeset(txn)
        yield from self.db.commit(txn)
        # FIFO writeset propagation ([20] uses FIFO; total order is a
        # superset of that guarantee)
        self.member.multicast(("ws", rid, writeset))
        return rows

    # -- client side ----------------------------------------------------------------

    def _accept_loop(self) -> Generator[Any, Any, None]:
        while True:
            chan = yield self.host.accept()
            self.sim.spawn(
                self._session(chan), name=f"{self.name}.session", daemon=True
            )

    def _session(self, chan) -> Generator[Any, Any, None]:
        while True:
            try:
                request = yield from chan.recv()
            except ChannelClosed:
                return
            assert isinstance(request, protocol.ProcRequest)
            try:
                rows = yield from self._handle_proc(request)
                chan.send(protocol.ProcResp(request.seq, protocol.COMMITTED, rows))
            except Exception as err:  # noqa: BLE001
                chan.send(
                    protocol.ProcResp(
                        request.seq,
                        protocol.ABORTED,
                        error=protocol.marshal_error(err),
                    )
                )

    def _handle_proc(self, request: protocol.ProcRequest) -> Generator[Any, Any, Any]:
        proc = self.system.procedures[request.proc]
        rid = f"{self.name}:r{next(self.system._rids)}"
        if proc.readonly:
            # queries run locally: enqueue local table locks only
            lock_request = _LockRequest(rid, proc.locks_for(request.params))
            self.locks.enqueue(lock_request)
            yield lock_request.granted.wait()
            try:
                txn = self.db.begin(gid=rid)
                rows = None
                for sql, sql_params in proc.statements(request.params):
                    result = yield from self.db.execute(txn, sql, sql_params)
                    if result.rows is not None:
                        rows = result.rows
                yield from self.db.commit(txn)
                return rows
            finally:
                self.locks.release(lock_request)
        waiter = OneShot()
        self._pending[rid] = waiter
        self.member.multicast(("req", rid, request.proc, request.params, self.name))
        rows = yield waiter.wait()
        return rows


class TableLockSystem:
    """The full [20]-style deployment: n replicas over the GCS."""

    def __init__(
        self,
        procedures: dict[str, Procedure],
        n_replicas: int = 3,
        seed: int = 0,
        gcs: Optional[GcsConfig] = None,
        cost_model: Optional[Callable[[int], CostModel]] = None,
        with_disk: bool = False,
    ):
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, latency=LatencyModel(rng=self.sim.rng("net")))
        self.bus = GroupBus(self.sim, config=gcs or GcsConfig())
        self.discovery = DiscoveryService(self.sim)
        self.procedures = procedures
        self.cost_model = cost_model
        self.with_disk = with_disk
        self._rids = itertools.count(1)
        self._client_count = 0
        self.replicas = [_TableLockReplica(self, i) for i in range(n_replicas)]

    def load_schema(self, ddl_statements: Iterable[str]) -> None:
        for sql in ddl_statements:
            for replica in self.replicas:
                replica.db.run_ddl(sql)

    def bulk_load(self, table: str, rows: list[dict]) -> None:
        for replica in self.replicas:
            replica.db.bulk_load(table, rows)

    def new_client_host(self, name: Optional[str] = None):
        self._client_count += 1
        return self.network.register(name or f"client-{self._client_count}")


class ProcClient:
    """Minimal client for the [20] system: one procedure call per txn."""

    _seqs = itertools.count(1)

    def __init__(self, system: TableLockSystem, host):
        self.system = system
        self.host = host
        self._channel = None

    def connect(self, address: Optional[str] = None) -> Generator[Any, Any, None]:
        addresses = yield from self.system.discovery.discover()
        target = address or addresses[
            self.system.sim.rng("proc-client").randrange(len(addresses))
        ]
        self._channel = self.system.network.connect(self.host, target)

    def call(
        self, proc: str, params: tuple = (), readonly: bool = False
    ) -> Generator[Any, Any, Any]:
        request = protocol.ProcRequest(next(self._seqs), proc, params, readonly)
        self._channel.client_end.send(request)
        response = yield from self._channel.client_end.recv()
        if response.outcome != protocol.COMMITTED:
            raise protocol.unmarshal_error(response.error)
        return response.rows
