"""The read-scaling tier: lazy read-only replicas.

SI-Rep makes every replica a full voting member, so a read-mostly
workload pays certification-path costs for transactions that never
produce a writeset.  This package adds **lazy read replicas** in the
spirit of non-monotonic snapshot isolation (Ardekani et al.): they
subscribe to the certified writeset stream (:class:`CertifiedFeed`),
apply it asynchronously in certification order — no certification, no
hole throttling, no vote — and serve snapshot reads at an advertised
apply **watermark** (the certification tid of the last applied
writeset, which equals the commit csn a fully caught-up full replica
would report).

Because applies happen strictly in certification order, every snapshot
a reader serves equals some prefix of the 1-copy-SI commit order: the
reads embed into the Def. 3 order by construction, just possibly at an
older csn.  Session guarantees (read-your-writes, monotonic reads) are
restored client-side by the routed driver, which carries csn tokens
(:mod:`repro.client.routing`).
"""

from repro.reader.config import ReaderConfig
from repro.reader.feed import CertifiedFeed
from repro.reader.replica import ReadReplica

__all__ = ["CertifiedFeed", "ReadReplica", "ReaderConfig"]
