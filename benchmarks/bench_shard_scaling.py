"""Sharded SI-Rep scaling — aggregate update throughput vs group count.

The unsharded cluster certifies every writeset in one total order, so
update capacity is flat no matter how many replicas are added (§6.3:
adding replicas helps reads, not updates).  Partitioning the tables
over independent replication groups splits the certification order: on
a fully partitioned update-only workload (every transaction touches a
single group), aggregate update-commit throughput should scale
near-linearly with the number of groups at fixed per-group size.

Setup: 3 replicas per group, the Fig. 7 cost model, 10 tables per group
with a key space wide enough that write-write conflicts stay rare, and
an offered load (600 tps) that saturates the 1- and 2-group configs.
"""

import json
import pathlib

from repro.bench.costs import MicroCost
from repro.bench.harness import run_sharded
from repro.workloads.sharded import make_partitioned_workload, make_table_map

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

GROUP_COUNTS = (1, 2, 4)
REPLICAS_PER_GROUP = 3
TABLES_PER_GROUP = 10
ROWS_PER_TABLE = 5000
OFFERED_TPS = 600.0


def _sweep():
    points = {}
    for n_groups in GROUP_COUNTS:
        workload = make_partitioned_workload(
            n_groups,
            tables_per_group=TABLES_PER_GROUP,
            rows_per_table=ROWS_PER_TABLE,
        )
        points[n_groups] = run_sharded(
            workload,
            OFFERED_TPS,
            n_groups=n_groups,
            replicas_per_group=REPLICAS_PER_GROUP,
            cost_model=MicroCost,
            table_map=make_table_map(n_groups, TABLES_PER_GROUP),
            duration=5.0,
            warmup=1.0,
            seed=0,
        )
    return points


def test_shard_scaling(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    base = points[1].throughput
    ratios = {g: points[g].throughput / base for g in GROUP_COUNTS}
    for g in GROUP_COUNTS:
        p = points[g]
        print(
            f"groups={g}: {p.throughput:.1f} tps committed "
            f"(x{ratios[g]:.2f}), abort rate {p.abort_rate:.3f}"
        )

    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "shard_scaling.json").write_text(
        json.dumps(
            {
                "offered_tps": OFFERED_TPS,
                "replicas_per_group": REPLICAS_PER_GROUP,
                "points": {
                    str(g): {
                        "throughput": points[g].throughput,
                        "speedup": ratios[g],
                        "update_rt_ms": points[g].rt("update"),
                        "abort_rate": points[g].abort_rate,
                        "extras": points[g].extras,
                    }
                    for g in GROUP_COUNTS
                },
            },
            indent=2,
        )
    )

    # near-linear update scaling once certification is per-group
    assert ratios[2] >= 1.6
    assert ratios[4] >= 2.5
    # the workload is fully partitioned: the router never saw a
    # cross-shard write attempt
    for g in GROUP_COUNTS:
        assert points[g].extras["rejected_cross_shard_writes"] == 0


# ---------------------------------------------------------------------------
# Canonical point for the unified suite runner (repro.bench.suite)
# ---------------------------------------------------------------------------

CANONICAL_GROUPS = 2


def canonical_point(quick: bool = True) -> dict:
    """Shard-scaling anchor: 2 groups, router spans stitched to branches."""
    duration, warmup = (2.5, 0.5) if quick else (5.0, 1.0)
    rows_per_table = 1000 if quick else ROWS_PER_TABLE
    workload = make_partitioned_workload(
        CANONICAL_GROUPS,
        tables_per_group=TABLES_PER_GROUP,
        rows_per_table=rows_per_table,
    )
    point = run_sharded(
        workload,
        OFFERED_TPS,
        n_groups=CANONICAL_GROUPS,
        replicas_per_group=REPLICAS_PER_GROUP,
        cost_model=MicroCost,
        table_map=make_table_map(CANONICAL_GROUPS, TABLES_PER_GROUP),
        duration=duration,
        warmup=warmup,
        seed=0,
        profile=True,
    )
    return {
        "config": {
            "n_groups": CANONICAL_GROUPS,
            "replicas_per_group": REPLICAS_PER_GROUP,
            "tables_per_group": TABLES_PER_GROUP,
            "rows_per_table": rows_per_table,
            "offered_tps": OFFERED_TPS,
            "duration": duration,
            "warmup": warmup,
            "seed": 0,
        },
        "metrics": {
            "throughput_tps": point.throughput,
            "update_rt_ms": point.rt("update"),
            "abort_rate": point.abort_rate,
            "rejected_cross_shard_writes": point.extras[
                "rejected_cross_shard_writes"
            ],
        },
        "profile": point.extras["profile"],
    }
