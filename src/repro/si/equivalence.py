"""Definition 2: SI-equivalence of two SI-schedules over the same T.

S1 and S2 are SI-equivalent iff for any Ti, Tj:
  (i)  WS_i ∩ WS_j ≠ ∅  ⇒  (c_i < c_j) ∈ S1 ⇔ (c_i < c_j) ∈ S2
  (ii) WS_i ∩ RS_j ≠ ∅  ⇒  (c_i < b_j) ∈ S1 ⇔ (c_i < b_j) ∈ S2
"""

from __future__ import annotations

from repro.si.schedule import BEGIN, COMMIT, Schedule, Violation


def equivalence_violations(s1: Schedule, s2: Schedule) -> list[Violation]:
    """All Def. 2 violations between two schedules (empty == equivalent).

    Equivalence is only defined over SI-schedules on the same transaction
    set; structural problems are reported as violations too.
    """
    problems: list[Violation] = []
    if set(s1.transactions) != set(s2.transactions):
        return [Violation("structure", "schedules cover different transaction sets")]
    for label, schedule in (("S1", s1), ("S2", s2)):
        for violation in schedule.violations():
            problems.append(
                Violation("structure", f"{label} is not an SI-schedule: {violation}")
            )
    if problems:
        return problems
    tids = list(s1.transactions)
    for i, ti in enumerate(tids):
        spec_i = s1.transactions[ti]
        for tj in tids:
            if ti == tj:
                continue
            spec_j = s1.transactions[tj]
            if tj > ti and spec_i.conflicts_with(spec_j):
                in_s1 = s1.before((COMMIT, ti), (COMMIT, tj))
                in_s2 = s2.before((COMMIT, ti), (COMMIT, tj))
                if in_s1 != in_s2:
                    problems.append(
                        Violation(
                            "ww-order",
                            f"commit order of ww-conflicting {ti},{tj} differs",
                        )
                    )
            if spec_i.writeset & spec_j.readset:
                in_s1 = s1.before((COMMIT, ti), (BEGIN, tj))
                in_s2 = s2.before((COMMIT, ti), (BEGIN, tj))
                if in_s1 != in_s2:
                    problems.append(
                        Violation(
                            "reads-from",
                            f"{tj} reads from {ti} in one schedule but not the other",
                        )
                    )
    return problems


def equivalent(s1: Schedule, s2: Schedule) -> bool:
    """True iff the schedules are SI-equivalent (Def. 2)."""
    return not equivalence_violations(s1, s2)
