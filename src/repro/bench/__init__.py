"""Benchmark harness reproducing the paper's §6 evaluation.

Every calibration constant lives in :mod:`repro.bench.costs`; the sweep
definitions for Figures 5-7 and the §6 claims live in
:mod:`repro.bench.figures`.  ``python -m repro.bench <fig5|fig6|fig7|claims|all>``
regenerates the series.
"""

from repro.bench.harness import (
    LoadPoint,
    per_replica_cost,
    run_centralized,
    run_sharded,
    run_sirep,
    run_tablelock,
    run_until_confident,
)

__all__ = [
    "LoadPoint",
    "per_replica_cost",
    "run_sirep",
    "run_centralized",
    "run_sharded",
    "run_tablelock",
    "run_until_confident",
]
