"""GCS stress and edge cases: multiple crashes, late joins, high rates."""

from repro.gcs import GcsConfig, GroupBus, Message, ViewChange
from repro.sim import Simulator


def collect(sim, member, out):
    def loop():
        while True:
            item = yield member.deliver()
            out.append(item)

    sim.spawn(loop(), name=f"collect-{member.member_id}", daemon=True)


def payloads(items):
    return [it.payload for it in items if isinstance(it, Message)]


def test_two_crashes_in_quick_succession():
    sim = Simulator(seed=1)
    bus = GroupBus(sim, config=GcsConfig(crash_detection=0.3))
    members = [bus.join(f"m{i}") for i in range(4)]
    out = []
    collect(sim, members[0], out)

    def scenario():
        yield sim.sleep(1.0)
        members[1].multicast("before")
        yield sim.sleep(0.1)
        bus.crash("m2")
        bus.crash("m3")
        yield sim.sleep(0.05)
        members[1].multicast("between")
        yield sim.sleep(2.0)
        members[1].multicast("after")
        yield sim.sleep(1.0)

    sim.run_process(scenario())
    views = [it for it in out if isinstance(it, ViewChange) and it.crashed]
    assert len(views) == 2
    assert {v.crashed[0] for v in views} == {"m2", "m3"}
    # final view has only the survivors
    assert views[-1].members in (("m0", "m1"),)
    assert payloads(out) == ["before", "between", "after"]


def test_total_order_preserved_across_crash():
    sim = Simulator(seed=2)
    bus = GroupBus(sim)
    members = [bus.join(f"m{i}") for i in range(3)]
    outs = [[], []]
    collect(sim, members[0], outs[0])
    collect(sim, members[1], outs[1])

    def sender(member, tag, n, delay):
        yield sim.sleep(delay)
        for i in range(n):
            if member.alive:
                member.multicast(f"{tag}{i}")
            yield sim.sleep(0.002)

    sim.spawn(sender(members[0], "a", 50, 0.0), name="s0")
    sim.spawn(sender(members[1], "b", 50, 0.001), name="s1")
    sim.spawn(sender(members[2], "c", 50, 0.0015), name="s2")
    sim.call_at(0.05, lambda: bus.crash("m2"))
    sim.run()
    seq0, seq1 = payloads(outs[0]), payloads(outs[1])
    assert seq0 == seq1
    assert len(seq0) > 80  # most messages survived


def test_late_join_sees_suffix_only():
    sim = Simulator(seed=3)
    bus = GroupBus(sim)
    m0 = bus.join("m0")
    out_new = []

    def scenario():
        yield sim.sleep(0.5)
        m0.multicast("early")
        yield sim.sleep(0.5)
        late = bus.join("late")
        collect(sim, late, out_new)
        yield sim.sleep(0.5)
        m0.multicast("late-era")
        yield sim.sleep(1.0)

    sim.run_process(scenario())
    assert payloads(out_new) == ["late-era"]


def test_hundreds_of_messages_per_second_stay_ordered_and_fast():
    sim = Simulator(seed=4)
    bus = GroupBus(sim)
    members = [bus.join(f"m{i}") for i in range(5)]
    received = []

    def receiver():
        while True:
            item = yield members[3].deliver()
            if isinstance(item, Message):
                received.append((item.seq, sim.now - item.payload))

    sim.spawn(receiver(), name="recv", daemon=True)

    def sender(member, offset):
        yield sim.sleep(offset)
        for _ in range(200):
            member.multicast(sim.now)
            yield sim.sleep(0.005)  # 200/s per sender => 600/s total

    for i in range(3):
        sim.spawn(sender(members[i], i * 0.001), name=f"s{i}")
    sim.run()
    assert len(received) == 600
    seqs = [seq for seq, _lat in received]
    assert seqs == sorted(seqs)
    worst = max(lat for _seq, lat in received)
    assert worst <= 0.003  # the paper's <=3 ms LAN envelope


def test_delivered_count_accounting():
    sim = Simulator(seed=5)
    bus = GroupBus(sim)
    members = [bus.join(f"m{i}") for i in range(2)]
    drained = []
    for member in members:
        collect(sim, member, drained)

    def scenario():
        yield sim.sleep(0.1)
        members[0].multicast("x")
        yield sim.sleep(1.0)

    sim.run_process(scenario())
    # 2 join views (first seen by 1 member, second by 2) + 1 msg to 2
    assert bus.delivered_count == 1 + 2 + 2
