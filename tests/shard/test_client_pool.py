"""Sharded closed-loop clients actually commit through the router.

Regression guard: the read-scaling tier taught ``ClientPool`` to pass
``readonly=`` on every statement, but ``RouterConnection.execute`` did
not accept the keyword — every sharded client died on its first
statement with a ``TypeError`` the simulator swallowed, and the
benchmark silently measured zero throughput.  This pins the pool ->
router -> group path end to end, and the ``profile`` fold with it.
"""

from repro.bench.costs import MicroCost
from repro.bench.harness import per_replica_cost, run_sharded
from repro.gcs import GcsConfig
from repro.shard import ShardClientPool, ShardConfig, ShardedCluster
from repro.workloads.sharded import make_partitioned_workload, make_table_map


def _workload(n_groups=2, rows=300):
    return make_partitioned_workload(
        n_groups, tables_per_group=4, rows_per_table=rows
    )


def test_shard_client_pool_commits():
    workload = _workload()
    cluster = ShardedCluster(
        ShardConfig(
            n_groups=2,
            replicas_per_group=3,
            seed=0,
            cost_model=per_replica_cost(MicroCost),
            partition="explicit",
            table_map=make_table_map(2, 4),
            gcs=GcsConfig(),
        )
    )
    workload.install(cluster)
    pool = ShardClientPool(cluster, workload, 20, 100.0, 2.0, warmup=0.5)
    stats = pool.run()
    # the sim must run the full duration (dead clients drain the queue)
    assert cluster.sim.now >= 2.0
    assert stats.categories["update"].commits > 0


def test_run_sharded_profile_extras():
    point = run_sharded(
        _workload(),
        100.0,
        n_groups=2,
        replicas_per_group=3,
        cost_model=MicroCost,
        table_map=make_table_map(2, 4),
        duration=2.0,
        warmup=0.5,
        seed=0,
        profile=True,
    )
    assert point.throughput > 0
    profile = point.extras["profile"]
    updates = profile["updates"]
    assert updates["n"] > 0
    assert updates["phases"]
    # attribution sums to end-to-end within the 1% acceptance bound
    assert updates["max_attribution_error"] <= 0.01
