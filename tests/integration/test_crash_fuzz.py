"""Crash fuzzing: random crash/recovery points under load must never
break convergence or the 1-copy-SI audit."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.errors import DatabaseError
from repro.testing import query


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_at=st.floats(min_value=0.1, max_value=1.5),
    victim=st.integers(min_value=0, max_value=2),
    recover=st.booleans(),
)
def test_random_crash_points_preserve_consistency(seed, crash_at, victim, recover):
    cluster = SIRepCluster(ClusterConfig(n_replicas=3, seed=seed))
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 7)])
    driver = Driver(cluster.network, cluster.discovery)
    rng = sim.rng("fuzz")
    committed = [0]

    def client(cid):
        conn = yield from driver.connect(cluster.new_client_host())
        for i in range(25):
            yield sim.sleep(0.02 + rng.random() * 0.05)
            try:
                yield from conn.execute(
                    "UPDATE kv SET v = ? WHERE k = ?",
                    (cid * 100 + i, rng.randint(1, 6)),
                )
                yield from conn.commit()
                committed[0] += 1
            except DatabaseError:
                pass

    for cid in range(5):
        sim.spawn(client(cid), name=f"c{cid}")
    sim.call_at(crash_at, lambda: cluster.crash(victim))
    if recover:
        sim.call_at(crash_at + 1.0, lambda: cluster.recover_replica(victim))
    sim.run()
    sim.run(until=sim.now + 6.0)

    assert committed[0] > 20
    report = cluster.one_copy_report()
    assert report.ok, [str(v) for v in report.violations]
    states = {
        tuple(
            (r["k"], r["v"])
            for r in query(sim, rep.node.db, "SELECT k, v FROM kv ORDER BY k")
        )
        for rep in cluster.alive_replicas()
    }
    assert len(states) == 1
    expected_alive = 3 if recover else 2
    assert len(cluster.alive_replicas()) == expected_alive


def test_metrics_snapshot():
    cluster = SIRepCluster(ClusterConfig(n_replicas=2, seed=3))
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": 1, "v": 0}])
    driver = Driver(cluster.network, cluster.discovery)

    def client():
        conn = yield from driver.connect(cluster.new_client_host())
        yield from conn.execute("UPDATE kv SET v = 1 WHERE k = 1")
        yield from conn.commit()
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()

    sim.run_process(client())
    sim.run(until=sim.now + 2.0)
    metrics = cluster.metrics()
    assert metrics["commits"] == 2
    assert metrics["certification_aborts"] == 0
    assert metrics["gcs_deliveries"] > 0
    assert set(metrics["replicas"]) == {"R0", "R1"}
    total_update_commits = sum(
        r["update_commits"] for r in metrics["replicas"].values()
    )
    assert total_update_commits == 1
    for data in metrics["replicas"].values():
        assert data["alive"] is True
        assert data["db_commits"] >= 1
        assert data["db_versions"] >= 1
