"""Property: delta transfer size scales with downtime, not database size.

The point of delta catch-up (§8) is that a rejoiner pays for what it
*missed*, while a full state transfer pays for what the database *holds*.
Hypothesis drives real mini-clusters: for a fixed set of missed writesets
the delta payload is identical regardless of how many rows were bulk
loaded, it grows monotonically with the number of missed transactions,
and the full-state payload — unlike the delta — grows with the database.
"""

from hypothesis import given, settings, strategies as st

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster


def run_recovery(db_rows: int, missed: int, mode: str = "delta") -> dict:
    """One crash/recover cycle; returns the rejoiner's recovery_stats."""
    cluster = SIRepCluster(ClusterConfig(n_replicas=2, seed=7, durable=True))
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, db_rows + 1)])
    driver = Driver(cluster.network, cluster.discovery)
    sim = cluster.sim

    def writes():
        yield sim.sleep(0.3)  # strictly after the crash: all missed
        conn = yield from driver.connect(cluster.new_client_host(), address="R1")
        for i in range(missed):
            # fixed-width values so payload size depends only on count
            yield from conn.execute(
                "UPDATE kv SET v = ? WHERE k = ?", (1000 + i % 7, 1 + i % 5)
            )
            yield from conn.commit()

    sim.call_at(0.1, lambda: cluster.crash(0))
    sim.spawn(writes(), name="w")
    sim.call_at(3.0, lambda: cluster.recover_replica(0, mode=mode))
    sim.run()
    sim.run(until=sim.now + 4.0)
    stats = dict(cluster.replicas[0].recovery_stats)
    assert cluster.replicas[0].recovered
    return stats


@settings(max_examples=5, deadline=None)
@given(
    db_rows=st.integers(min_value=5, max_value=40),
    missed=st.integers(min_value=1, max_value=6),
)
def test_delta_bytes_depend_on_downtime_not_db_size(db_rows, missed):
    small = run_recovery(db_rows, missed)
    large = run_recovery(db_rows * 3, missed)
    assert small["mode"] == large["mode"] == "delta"
    assert small["records"] == large["records"] == missed
    # same missed writesets -> same payload, regardless of table size
    assert small["bytes"] == large["bytes"]

    longer = run_recovery(db_rows, missed + 3)
    assert longer["records"] == missed + 3
    # more downtime -> strictly more to ship
    assert longer["bytes"] > small["bytes"]


@settings(max_examples=3, deadline=None)
@given(
    db_rows=st.integers(min_value=5, max_value=25),
    missed=st.integers(min_value=1, max_value=4),
)
def test_full_transfer_grows_with_db_size_and_dwarfs_delta(db_rows, missed):
    delta = run_recovery(db_rows * 4, missed, mode="delta")
    full_small = run_recovery(db_rows, missed, mode="full")
    full_large = run_recovery(db_rows * 4, missed, mode="full")
    assert full_large["bytes"] > full_small["bytes"]
    # the whole point: short downtime on a big database -> delta wins
    assert delta["bytes"] < full_large["bytes"]
    assert delta["records"] == missed
    assert full_large["records"] == db_rows * 4  # every row shipped
