"""Deterministic discrete-event simulation kernel.

Every concurrent actor in the reproduction (clients, middleware sessions,
committers, the group-communication bus, lock waiters) is a plain Python
generator driven by :class:`~repro.sim.kernel.Simulator`.  Virtual time plus
seeded random streams make every experiment replayable bit-for-bit.

Public surface::

    sim = Simulator(seed=7)
    proc = sim.spawn(my_generator(), name="client-0")
    sim.run()                      # drain all events
    result = sim.run_process(g()) # drive one coroutine to completion

Inside a coroutine::

    yield sim.sleep(0.5)           # advance virtual time
    yield event.wait()             # block on an Event
    yield mutex.acquire(); ...; mutex.release()
    item = yield queue.get()
    yield from resource.use(0.002) # hold a FIFO service centre
"""

from repro.sim.kernel import Process, Simulator
from repro.sim.resources import Resource
from repro.sim.sync import Event, Gate, Mutex, Queue, wait_until

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Mutex",
    "Queue",
    "Gate",
    "wait_until",
    "Resource",
]
