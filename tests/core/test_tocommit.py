"""To-commit queue unit tests."""

import pytest

from repro.core.tocommit import Entry, ToCommitQueue
from repro.core.validation import WsRecord
from repro.storage.writeset import UPDATE, WriteOp, WriteSet


def ws(*keys):
    return WriteSet([WriteOp("t", k, UPDATE, {"k": k}) for k in keys])


def entry(gid, tid, *keys, local=False):
    record = WsRecord(gid, ws(*keys), cert=0)
    record.tid = tid
    return Entry(record, local_txn=object() if local else None)


def test_append_remove_and_len():
    queue = ToCommitQueue()
    e1, e2 = entry("a", 1, 1), entry("b", 2, 2)
    queue.append(e1)
    queue.append(e2)
    assert len(queue) == 2
    assert queue.head() is e1
    queue.remove(e1)
    assert queue.head() is e2
    assert queue.appended_total == 2


def test_extend_counts_entries_not_batches():
    """``appended_total`` is an ENTRY counter: a batch of k adds k (one
    batched delivery must not look like one transaction in dashboards);
    the batch ingestions themselves are counted separately."""
    queue = ToCommitQueue()
    queue.append(entry("a", 1, 1))
    queue.extend([entry("b", 2, 2), entry("c", 3, 3), entry("d", 4, 4)])
    queue.extend([entry("e", 5, 5)])
    assert queue.appended_total == 5
    assert queue.appended_batches == 2
    assert len(queue) == 5
    assert [e.gid for e in queue] == ["a", "b", "c", "d", "e"]


def test_extend_empty_batch_counts_nothing():
    queue = ToCommitQueue()
    queue.extend([])
    assert queue.appended_total == 0
    assert queue.appended_batches == 0
    assert len(queue) == 0


def test_conflicting_predecessor_found_in_order():
    queue = ToCommitQueue()
    e1 = entry("a", 1, 1, 2)
    e2 = entry("b", 2, 3)
    e3 = entry("c", 3, 2, 3)
    for e in (e1, e2, e3):
        queue.append(e)
    assert queue.conflicting_predecessor(e1) is None
    assert queue.conflicting_predecessor(e2) is None
    assert queue.conflicting_predecessor(e3) is e1  # earliest conflict wins


def test_conflicting_predecessor_requires_membership():
    queue = ToCommitQueue()
    with pytest.raises(ValueError):
        queue.conflicting_predecessor(entry("x", 9, 1))


def test_overlaps_for_local_validation():
    queue = ToCommitQueue()
    queue.append(entry("a", 1, 1, 2))
    assert queue.overlaps(ws(2))
    assert not queue.overlaps(ws(5))


def test_entry_properties():
    local = entry("a", 1, 1, local=True)
    remote = entry("b", 2, 2)
    assert local.is_local and not remote.is_local
    assert local.tid == 1
    assert local.gid == "a"
    assert not local.done.is_set
