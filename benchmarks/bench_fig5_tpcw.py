"""Figure 5 — TPC-W ordering mix: response time vs load, 5 replicas vs
centralized.

Shape assertions (not absolute numbers):
* at light load (25 tps) the two systems are comparable;
* the centralized system is saturated by ~100 tps while the 5-replica
  cluster still tracks the offered load;
* read-only transactions are cheaper than updates (many short queries).
"""

from repro.bench import figures


def _by(points, system, load):
    return next(p for p in points if p.system == system and p.load_tps == load)


def test_fig5_tpcw_response_times(benchmark):
    points = benchmark.pedantic(
        lambda: figures.fig5_tpcw(fast=True, quiet=False), rounds=1, iterations=1
    )

    light_rep = _by(points, "SRCA-Rep", 25)
    light_cen = _by(points, "centralized", 25)
    heavy_rep = _by(points, "SRCA-Rep", 100)
    heavy_cen = _by(points, "centralized", 100)

    # light load: same ballpark (within ~3x)
    assert light_cen.rt("update") < 3 * light_rep.rt("update") + 20

    # centralized saturates: it cannot track 100 tps, the cluster can
    assert heavy_cen.throughput < 0.75 * 100
    assert heavy_rep.throughput > 0.80 * 100

    # saturation shows in response time too
    assert heavy_cen.rt("update") > 3 * heavy_rep.rt("update")

    # the mix's many short queries: read-only cheaper than update
    for point in points:
        assert point.rt("read-only") < point.rt("update")

    # §6.1: very few aborts (far below 1%) at the paper's loads
    assert light_rep.abort_rate < 0.01
