"""Crash flight recorder (repro.obs.flight): capture, dump, render, CLI."""

import json

import pytest

from repro.obs import FlightRecorder, Tracer
from repro.obs.events import EventLog
from repro.obs.flight import FORMAT_VERSION, main, render


class FakeSim:
    def __init__(self):
        self.now = 0.0


@pytest.fixture
def env():
    sim = FakeSim()
    tracer = Tracer(sim)
    events = EventLog(sim)
    flight = FlightRecorder(sim, tracer=tracer, events=events)
    return sim, tracer, events, flight


def test_snapshot_captures_spans_events_and_context(env):
    sim, tracer, events, flight = env
    tracer.record("txn", "g1", start=0.0, replica="R0")
    stuck = tracer.start("apply", "g2", replica="R1")
    events.emit("ws_delivered", gid="g1")
    sim.now = 1.5
    snap = flight.snapshot("audit-failed", cycle=["cR0:g1"])
    assert snap["format"] == FORMAT_VERSION
    assert snap["reason"] == "audit-failed" and snap["t"] == 1.5
    assert snap["context"] == {"cycle": ["cR0:g1"]}
    assert [s["name"] for s in snap["spans"]] == ["txn"]
    assert [s["name"] for s in snap["open_spans"]] == ["apply"]
    assert snap["open_spans"][0]["end"] is None
    assert [e["event"] for e in snap["events"]] == ["ws_delivered"]
    assert flight.snapshots == [snap]
    assert stuck.open  # capture is read-only: the span stays open


def test_snapshot_ring_is_bounded(env):
    sim, _tracer, _events, flight = env
    flight.max_snapshots = 3
    for i in range(5):
        flight.snapshot(f"r{i}")
    assert [s["reason"] for s in flight.snapshots] == ["r2", "r3", "r4"]


def test_span_tail_is_bounded(env):
    sim, tracer, _events, flight = env
    flight.max_spans = 2
    for i in range(4):
        tracer.record(f"s{i}", "g", start=float(i))
    snap = flight.snapshot("bounded")
    assert [s["name"] for s in snap["spans"]] == ["s2", "s3"]


def test_directory_dumps_strict_json(env, tmp_path):
    sim, tracer, _events, flight = env
    flight.directory = str(tmp_path / "flights")
    tracer.record("txn", "g1", start=0.0, replica="R0", n=float("inf"))
    sim.now = 0.25
    flight.snapshot("crash:R0")
    assert len(flight.dumped) == 1
    path = flight.dumped[0]
    assert "flight-crash-R0-0.250000.json" in path  # ':' sanitized
    loaded = json.loads(open(path).read())  # strict: would reject Infinity
    assert loaded["reason"] == "crash:R0"
    assert loaded["spans"][0]["attrs"]["n"] is None  # sanitized


def test_guard_snapshots_and_reraises(env):
    sim, _tracer, _events, flight = env
    with pytest.raises(RuntimeError, match="boom"):
        with flight.guard("worker-died", worker="w1"):
            raise RuntimeError("boom")
    assert len(flight.snapshots) == 1
    snap = flight.snapshots[0]
    assert snap["reason"] == "worker-died"
    assert snap["context"]["worker"] == "w1"
    assert "RuntimeError" in snap["context"]["error"]
    # no exception -> no snapshot
    with flight.guard("quiet"):
        pass
    assert len(flight.snapshots) == 1


def test_render_shows_timelines_and_open_work(env):
    sim, tracer, events, flight = env
    tracer.record("commit", "g1", start=0.1, replica="R0")
    tracer.record("deliver", "g1", start=0.1, replica="R1", status="aborted")
    tracer.start("apply", "g2", replica="R1")
    events.emit("ws_delivered", gid="g1")
    sim.now = 0.5
    text = render(flight.snapshot("crash:R1"))
    assert "reason: crash:R1" in text
    assert "replica R0" in text and "replica R1" in text
    assert "commit  g1" in text
    assert "[aborted]" in text
    assert "in flight at capture: 1 open span(s)" in text
    assert "ws_delivered" in text


def test_cli_renders_a_dump(env, tmp_path, capsys):
    sim, tracer, _events, flight = env
    tracer.record("txn", "g1", start=0.0, replica="R0")
    path = flight.dump(flight.snapshot("post-mortem"), str(tmp_path / "f.json"))
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "reason: post-mortem" in out
    assert "txn  g1" in out
    # --tail trims the per-replica timelines
    assert main([path, "--tail", "1"]) == 0


def test_recorder_without_tracer_or_events(env, tmp_path):
    sim = FakeSim()
    flight = FlightRecorder(sim)
    snap = flight.snapshot("bare")
    assert snap["spans"] == [] and snap["events"] == []
    text = render(snap)
    assert "in flight at capture: 0 open span(s)" in text
