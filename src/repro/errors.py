"""Exception taxonomy for the SI-Rep reproduction.

Exceptions are grouped by the subsystem that raises them.  Client-visible
errors (the ones a JDBC application would see) all derive from
:class:`DatabaseError`, mirroring how a driver surfaces SQLSTATE classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Misuse or internal failure of the discrete-event kernel."""


class SimulationStalled(SimulationError):
    """`run_process` ran out of events before the process finished.

    This almost always means a real deadlock among simulated processes
    (everyone is blocked and no timer is pending).
    """


class ProcessKilled(SimulationError):
    """Raised by `Process.join` when the joined process was killed."""


class QueueClosed(SimulationError):
    """``get()`` on a closed :class:`repro.sim.sync.Queue`.

    Pending items queued before the close are still delivered; only
    getters that would block forever (and later ``put``/``get`` calls)
    fail.
    """


class RuntimeStopped(SimulationError):
    """The runtime was stopped while a process was still blocked.

    Raised into pending ``OneShot``/``Event`` waiters by
    ``AsyncioRuntime.stop()`` so an aborted wall-clock run unwinds
    instead of leaking blocked coroutines.
    """


# ---------------------------------------------------------------------------
# Database engine (client-visible subset mirrors PostgreSQL error classes)
# ---------------------------------------------------------------------------

class DatabaseError(ReproError):
    """Base class for errors surfaced to database clients."""


class SQLError(DatabaseError):
    """Syntax or semantic error in a SQL statement."""


class CatalogError(SQLError):
    """Unknown/duplicate table, column, or index."""


class IntegrityError(DatabaseError):
    """Constraint violation (duplicate primary key, NOT NULL, type)."""


class TransactionAborted(DatabaseError):
    """The transaction was aborted and must be retried by the client."""


class SerializationFailure(TransactionAborted):
    """First-updater-wins version check failed (SQLSTATE 40001 analogue).

    Raised when a transaction tries to update a row whose last committed
    version was created by a concurrent, already-committed transaction.
    """


class DeadlockDetected(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class CertificationAborted(TransactionAborted):
    """Middleware validation found a write/write conflict with a
    concurrently validated transaction (Fig. 1 step I.3 / Fig. 4 step II)."""


class InvalidTransactionState(DatabaseError):
    """Operation issued on a transaction that is not active."""


class ReadOnlyViolation(DatabaseError):
    """A write (or DDL) statement reached a lazy read-only replica.

    The read tier applies the certified writeset stream but never
    certifies or votes, so it cannot accept updates; the routed driver
    normally prevents this by sending update transactions to a full
    replica."""


# ---------------------------------------------------------------------------
# Client driver / middleware connectivity
# ---------------------------------------------------------------------------

class ConnectionLost(DatabaseError):
    """The middleware replica serving this connection crashed.

    Per paper §5.4: the driver reconnects automatically; the active
    transaction (if any) is lost and the client must restart it.  The
    connection object itself remains usable.
    """


class TransactionOutcomeUnknownAborted(ConnectionLost):
    """A crash hit a commit in flight and the surviving replicas never
    received the writeset (case 3a): the transaction did not commit."""


class NoReplicaAvailable(DatabaseError):
    """Discovery found no live middleware replica to connect to."""


# ---------------------------------------------------------------------------
# Sharded deployment (repro.shard)
# ---------------------------------------------------------------------------

class ShardingError(DatabaseError):
    """Base class for partial-replication routing errors."""


class CrossShardWriteError(ShardingError):
    """An update transaction touched more than one replication group.

    Certification is per-group, so a multi-group update would need an
    atomic commitment protocol across groups; the router rejects it and
    rolls the transaction back on every group it touched.
    """


class CrossShardStatementError(ShardingError):
    """A single statement (e.g. a join) referenced tables owned by
    different replication groups; statements must be single-group."""


class PlacementError(ShardingError):
    """DDL or bulk load referenced a table the partitioner cannot place
    (unknown table under an explicit map, or conflicting re-placement)."""


# ---------------------------------------------------------------------------
# Group communication
# ---------------------------------------------------------------------------

class GcsError(ReproError):
    """Misuse of the group communication substrate."""


class NotAMember(GcsError):
    """The sending endpoint is not part of the current view."""
