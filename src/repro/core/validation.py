"""Optimistic writeset certification (Fig. 1 step I.3 / Fig. 4 step II).

A transaction T carries a certificate ``cert``: the tid of the last
validated (Fig. 4) or last locally-committed (Fig. 1) transaction observed
when T's snapshot position was fixed.  Validation of T fails iff some
already-validated transaction Tj with ``T.cert < Tj.tid`` overlaps T's
writeset — i.e. a concurrent writer was certified first.

The check "∃ Tj ∈ ws_list: cert < Tj.tid ∧ WS ∩ WSj ≠ ∅" is implemented
with a per-tuple last-certified-tid map, which is observationally
identical to scanning ``ws_list`` but O(|WS|) per validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.storage.writeset import WriteSet


@dataclass
class WsRecord:
    """A writeset travelling through certification."""

    gid: str
    writeset: WriteSet
    cert: int
    sender: str = ""
    tid: Optional[int] = None

    def conflicts_with(self, other: "WsRecord") -> bool:
        return self.writeset.conflicts_with(other.writeset)


class Certifier:
    """Deterministic certification state.

    Every SRCA-Rep middleware replica holds one and feeds it writesets in
    total-order delivery sequence, so all replicas reach identical
    decisions (§5.3).
    """

    def __init__(self) -> None:
        self.last_validated_tid = 0
        #: (table, pk) -> tid of the last certified transaction writing it
        self._last_writer: dict[tuple[str, Any], int] = {}
        self.validated = 0
        self.rejected = 0

    def conflicts(self, record: WsRecord) -> bool:
        """Would ``record`` fail validation right now? (No state change.)"""
        return any(
            self._last_writer.get(key, 0) > record.cert
            for key in record.writeset.keys
        )

    def validate(self, record: WsRecord) -> bool:
        """Certify ``record``; on success assigns ``record.tid``.

        Must be called in writeset delivery (total) order.
        """
        if self.conflicts(record):
            self.rejected += 1
            return False
        self.last_validated_tid += 1
        record.tid = self.last_validated_tid
        for key in record.writeset.keys:
            self._last_writer[key] = record.tid
        self.validated += 1
        return True

    def validate_batch(self, records: list[WsRecord]) -> list[bool]:
        """Certify a delivered batch as one ordered unit.

        Entries stay individually ordered: each validates against the
        state left by its in-batch predecessors, so the decisions are
        identical to delivering the same records one message at a time.
        """
        return [self.validate(record) for record in records]

    @property
    def decisions(self) -> int:
        return self.validated + self.rejected

    @property
    def window_size(self) -> int:
        """Tuples tracked in the last-writer map — the certification
        working set (grows with the distinct keys ever written)."""
        return len(self._last_writer)

    def clone(self) -> "Certifier":
        """Snapshot for recovery state transfer: a recovering replica
        resumes certification from the donor's exact decision state."""
        other = Certifier()
        other.last_validated_tid = self.last_validated_tid
        other._last_writer = dict(self._last_writer)
        return other
