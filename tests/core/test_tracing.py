"""Commit-latency tracing and its phase breakdown."""

import pytest

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.core.tracing import TraceLog


def test_tracelog_breakdown_math():
    trace = TraceLog()
    trace.record("g1", "begin", 0.0)
    trace.record("g1", "commit_request", 0.010)
    trace.record("g1", "multicast", 0.011)
    trace.record("g1", "certified", 0.013)
    trace.record("g1", "committed", 0.014)
    trace.record("g2", "begin", 1.0)  # incomplete: ignored
    out = trace.breakdown()
    assert out["n"] == 1
    assert out["execution"] == pytest.approx(0.010)
    assert out["local_validation_and_multicast"] == pytest.approx(0.001)
    assert out["gcs_and_certification"] == pytest.approx(0.002)
    assert out["commit_queue"] == pytest.approx(0.001)
    assert out["total"] == pytest.approx(0.014)


def test_empty_tracelog():
    assert TraceLog().breakdown() == {"n": 0.0}


def test_cluster_trace_end_to_end():
    cluster = SIRepCluster(ClusterConfig(n_replicas=3, seed=5, trace=True))
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": 1, "v": 0}])
    driver = Driver(cluster.network, cluster.discovery)

    def client():
        conn = yield from driver.connect(cluster.new_client_host())
        for i in range(5):
            yield from conn.execute("UPDATE kv SET v = ? WHERE k = 1", (i,))
            yield from conn.commit()
            yield sim.sleep(0.05)

    sim.run_process(client())
    sim.run(until=sim.now + 1.0)
    breakdown = cluster.trace.breakdown()
    assert breakdown["n"] == 5
    # the zero-cost model: total latency is pure communication
    assert breakdown["execution"] >= 0.0
    # GCS hop dominates (~1.5 ms sender->bus->member)
    assert 0.0005 < breakdown["gcs_and_certification"] < 0.005
    assert breakdown["total"] < 0.02


def test_trace_off_by_default():
    cluster = SIRepCluster(ClusterConfig(n_replicas=2, seed=1))
    assert cluster.trace is None
    assert cluster.replicas[0].trace is None

# -- bounded retention (aborted/abandoned transactions must not leak) ----------


def test_inflight_stamps_are_bounded():
    trace = TraceLog(max_inflight=10)
    for i in range(50):
        trace.record(f"g{i}", "begin", float(i))  # never completes
    assert len(trace.events) <= 10
    assert trace.compacted == 40
    assert trace.complete_transactions() == []


def test_completed_transactions_survive_compaction():
    trace = TraceLog(max_inflight=5)
    trace.record("keeper", "begin", 0.0)
    trace.record("keeper", "commit_request", 0.1)
    trace.record("keeper", "multicast", 0.2)
    trace.record("keeper", "certified", 0.3)
    trace.record("keeper", "committed", 0.4)
    # a flood of transactions that never commit (lost sessions, aborts
    # nobody discarded) gets compacted oldest-first...
    for i in range(50):
        trace.record(f"abandoned{i}", "begin", 1.0 + i)
    assert len(trace.events) <= 5
    # ...without touching the completed record or its aggregates
    complete = trace.complete_transactions()
    assert len(complete) == 1
    assert complete[0]["begin"] == 0.0
    out = trace.breakdown()
    assert out["n"] == 1.0
    assert out["total"] == pytest.approx(0.4)


def test_discard_drops_inflight_stamps():
    trace = TraceLog()
    trace.record("g1", "begin", 0.0)
    trace.record("g1", "commit_request", 0.1)
    trace.discard("g1")
    trace.discard("never-seen")  # tolerant of unknown gids
    assert trace.events == {}
    assert trace.breakdown() == {"n": 0.0}


def test_breakdown_with_empty_phase_is_strict_json():
    import json

    trace = TraceLog()
    # a transaction that skipped the replication milestones entirely:
    # three of the four phases have no samples
    trace.record("g1", "begin", 0.0)
    trace.record("g1", "committed", 0.5)
    out = trace.breakdown()
    assert out["n"] == 1.0
    assert out["execution"] is None  # None, never NaN
    assert out["gcs_and_certification_p95"] is None
    assert out["total"] == pytest.approx(0.5)
    # the whole point of None-not-NaN: results/*.json stays valid JSON
    json.dumps(out, allow_nan=False)
