"""Total order, uniform reliable multicast via a sequencer bus.

The bus is a *model* of the agreement protocol, not a reimplementation of
Spread: a message becomes **stable** the instant the sequencer orders it
(after the sender->bus hop), and a stable message is delivered to every
live member.  This yields the two properties the paper relies on:

* if the sender crashes before its message reaches the bus, nobody ever
  delivers it (driver failover case 3a);
* once sequenced, *everyone* alive delivers it in sequence order, and a
  crash's view change is sequenced *behind* all earlier messages, so "a
  member either receives the writeset before being informed about the
  crash, or not at all" (§5.4).

Latency is calibrated to the paper's Spread numbers: a uniform reliable
multicast costs a few milliseconds on a LAN (§5.2 reports <= 3 ms).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import GcsError, NotAMember
from repro.sim import Queue, Simulator


@dataclass(frozen=True)
class GcsConfig:
    """Tunable delays of the group communication system.

    ``sender_to_bus`` models the sender->sequencer hop; ``bus_to_member``
    the ordered delivery fan-out (so one multicast costs their sum, ~1.5 ms
    by default, within the paper's <=3 ms envelope).  ``jitter`` adds a
    uniform random component to each hop.  ``crash_detection`` is the
    failure-detector timeout before a view change is issued — "up to a
    couple of seconds depending on the timeout interval" (§5.2).
    """

    sender_to_bus: float = 0.0008
    bus_to_member: float = 0.0007
    jitter: float = 0.0002
    crash_detection: float = 0.5


@dataclass(frozen=True)
class Message:
    """A totally ordered multicast delivery."""

    seq: int
    sender: str
    payload: Any
    view_id: int


@dataclass(frozen=True)
class ViewChange:
    """Membership notification, delivered in total order like a message."""

    seq: int
    view_id: int
    members: tuple[str, ...]
    crashed: tuple[str, ...] = field(default_factory=tuple)
    joined: tuple[str, ...] = field(default_factory=tuple)


class GroupMember:
    """One endpoint's handle on the group: an inbox plus ``multicast``."""

    def __init__(self, bus: "GroupBus", member_id: str):
        self.bus = bus
        self.member_id = member_id
        self.inbox: Queue = Queue(name=f"gcs({member_id})")
        self.alive = True
        self._last_delivery = 0.0

    def multicast(self, payload: Any) -> None:
        """Uniform reliable total order multicast to the whole group."""
        self.bus._multicast(self, payload)

    def deliver(self):
        """Awaitable: next :class:`Message` or :class:`ViewChange`."""
        return self.inbox.get()

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<GroupMember {self.member_id} {state}>"


class GroupBus:
    """The sequencer: joins, total ordering, uniform delivery, crashes."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[GcsConfig] = None,
        rng_stream: str = "gcs",
    ):
        # ``rng_stream`` keeps multiple buses on one simulator (a sharded
        # deployment runs one bus per replication group) statistically
        # independent: each draws jitter from its own named stream.
        self.sim = sim
        self.config = config or GcsConfig()
        self._rng = sim.rng(rng_stream)
        self._members: dict[str, GroupMember] = {}
        self._seq = itertools.count(1)
        self.view_id = 0
        self.delivered_count = 0

    # -- membership -------------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(mid for mid, m in self._members.items() if m.alive)

    def join(self, member_id: str) -> GroupMember:
        """Add a member and announce the new view to everyone.

        The paper performs recovery/joining offline; we likewise expect
        joins before transaction processing starts, but announce a view so
        members can track membership uniformly.
        """
        if member_id in self._members and self._members[member_id].alive:
            raise GcsError(f"member {member_id!r} already joined")
        member = GroupMember(self, member_id)
        self._members[member_id] = member
        self.view_id += 1
        view = ViewChange(
            seq=next(self._seq),
            view_id=self.view_id,
            members=self.members,
            joined=(member_id,),
        )
        self._fanout(view, extra_delay=0.0)
        return member

    def crash(self, member_id: str) -> None:
        """Mark a member crashed.

        The member stops delivering immediately; its un-sequenced messages
        are lost.  Survivors receive the view change once the failure
        detector fires (``crash_detection`` later), sequenced *behind*
        every message ordered in the meantime — exactly the "writeset
        before crash notification, or not at all" guarantee of §5.4.
        """
        member = self._members.get(member_id)
        if member is None or not member.alive:
            return
        member.alive = False
        self.sim.call_at(
            self.sim.now + self.config.crash_detection,
            lambda: self._issue_view_change(crashed=(member_id,)),
        )

    def _issue_view_change(self, crashed: tuple[str, ...]) -> None:
        self.view_id += 1
        view = ViewChange(
            seq=next(self._seq),
            view_id=self.view_id,
            members=self.members,
            crashed=crashed,
        )
        self._fanout(view, extra_delay=0.0)

    # -- multicast ---------------------------------------------------------------

    def _multicast(self, sender: GroupMember, payload: Any) -> None:
        if not sender.alive:
            raise NotAMember(f"{sender.member_id!r} is not in the view")
        hop = self.config.sender_to_bus + self._rng.random() * self.config.jitter
        # The message becomes stable (sequenced) only when it reaches the
        # bus; if the sender dies first the cluster-level crash handler has
        # already marked it dead and _sequence drops the message.
        self.sim.call_at(self.sim.now + hop, lambda: self._sequence(sender, payload))

    def _sequence(self, sender: GroupMember, payload: Any) -> None:
        if not sender.alive:
            return  # lost with the sender: never sequenced, never delivered
        message = Message(
            seq=next(self._seq),
            sender=sender.member_id,
            payload=payload,
            view_id=self.view_id,
        )
        self._fanout(message, extra_delay=0.0)

    def _fanout(self, item: Any, extra_delay: float) -> None:
        for member in self._members.values():
            if not member.alive:
                continue
            hop = (
                self.config.bus_to_member
                + self._rng.random() * self.config.jitter
                + extra_delay
            )
            # Clamp to keep per-member delivery monotone in sequence order.
            target = max(self.sim.now + hop, member._last_delivery)
            member._last_delivery = target
            self.sim.call_at(target, lambda m=member, it=item: self._deliver(m, it))

    def _deliver(self, member: GroupMember, item: Any) -> None:
        if not member.alive:
            return
        self.delivered_count += 1
        member.inbox.put(item)
