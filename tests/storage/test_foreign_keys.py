"""FOREIGN KEY (REFERENCES) enforcement: local checks, SI caveat pinned."""

import pytest

from repro.errors import CatalogError, IntegrityError
from repro.sim import Simulator
from repro.storage import Database
from repro.testing import commit_sync, execute_sync, query, run_txn


@pytest.fixture
def env():
    sim = Simulator(seed=1)
    db = Database(sim, name="R")
    run_txn(
        sim, db,
        [
            ("CREATE TABLE parent (id INT PRIMARY KEY, name TEXT)",),
            (
                "CREATE TABLE child (cid INT PRIMARY KEY, "
                "pid INT REFERENCES parent, note TEXT)",
            ),
            ("CREATE INDEX i_child_pid ON child (pid)",),
            ("INSERT INTO parent (id, name) VALUES (1, 'a'), (2, 'b')",),
            ("INSERT INTO child (cid, pid, note) VALUES (10, 1, 'x')",),
        ],
    )
    return sim, db


def test_insert_with_valid_reference(env):
    sim, db = env
    run_txn(sim, db, [("INSERT INTO child (cid, pid, note) VALUES (11, 2, 'y')",)])
    assert query(sim, db, "SELECT COUNT(*) AS n FROM child") == [{"n": 2}]


def test_insert_with_dangling_reference_rejected(env):
    sim, db = env
    txn = db.begin()
    with pytest.raises(IntegrityError, match="references no row"):
        execute_sync(
            sim, db, txn, "INSERT INTO child (cid, pid, note) VALUES (12, 99, 'z')"
        )
    assert txn.status == "aborted"


def test_null_reference_allowed(env):
    sim, db = env
    run_txn(sim, db, [("INSERT INTO child (cid, pid, note) VALUES (13, NULL, 'n')",)])
    rows = query(sim, db, "SELECT pid FROM child WHERE cid = 13")
    assert rows == [{"pid": None}]


def test_update_to_dangling_reference_rejected(env):
    sim, db = env
    txn = db.begin()
    with pytest.raises(IntegrityError, match="references no row"):
        execute_sync(sim, db, txn, "UPDATE child SET pid = 77 WHERE cid = 10")


def test_delete_referenced_parent_rejected(env):
    sim, db = env
    txn = db.begin()
    with pytest.raises(IntegrityError, match="referenced by"):
        execute_sync(sim, db, txn, "DELETE FROM parent WHERE id = 1")


def test_delete_unreferenced_parent_allowed(env):
    sim, db = env
    run_txn(sim, db, [("DELETE FROM parent WHERE id = 2",)])
    assert query(sim, db, "SELECT COUNT(*) AS n FROM parent") == [{"n": 1}]


def test_delete_children_then_parent(env):
    sim, db = env
    run_txn(sim, db, [("DELETE FROM child WHERE pid = 1",),
                      ("DELETE FROM parent WHERE id = 1",)])
    assert query(sim, db, "SELECT COUNT(*) AS n FROM parent") == [{"n": 1}]


def test_insert_child_referencing_own_uncommitted_parent(env):
    sim, db = env
    txn = db.begin()
    execute_sync(sim, db, txn, "INSERT INTO parent (id, name) VALUES (3, 'c')")
    execute_sync(sim, db, txn, "INSERT INTO child (cid, pid, note) VALUES (14, 3, 'w')")
    commit_sync(sim, db, txn)
    assert query(sim, db, "SELECT COUNT(*) AS n FROM child WHERE pid = 3") == [
        {"n": 1}
    ]


def test_concurrent_insert_cannot_see_uncommitted_parent(env):
    sim, db = env
    creator = db.begin()
    execute_sync(sim, db, creator, "INSERT INTO parent (id, name) VALUES (4, 'd')")
    other = db.begin()
    with pytest.raises(IntegrityError):
        execute_sync(
            sim, db, other, "INSERT INTO child (cid, pid, note) VALUES (15, 4, 'v')"
        )
    db.abort(creator)


def test_references_unknown_table_rejected():
    sim = Simulator()
    db = Database(sim)
    with pytest.raises(CatalogError, match="unknown table"):
        db.run_ddl("CREATE TABLE c (id INT PRIMARY KEY, x INT REFERENCES nope)")


def test_si_caveat_cross_transaction_orphan_possible(env):
    """Pinned caveat: SI certifies only write/write conflicts, so a
    concurrent parent-delete and child-insert (disjoint writesets) can
    both commit — exactly the class of constraint anomaly SI permits
    (the paper: "Only conflicts between write operations are detected").
    """
    sim, db = env
    deleter = db.begin()
    inserter = db.begin()
    # the deleter removes parent 2 (no children yet)
    execute_sync(sim, db, deleter, "DELETE FROM parent WHERE id = 2")
    # the inserter, on its own snapshot, still sees parent 2
    execute_sync(
        sim, db, inserter, "INSERT INTO child (cid, pid, note) VALUES (16, 2, 'o')"
    )
    commit_sync(sim, db, deleter)
    commit_sync(sim, db, inserter)  # disjoint writesets: SI lets it pass
    orphans = query(
        sim, db,
        "SELECT c.cid FROM child c LEFT JOIN parent p ON c.pid = p.id "
        "WHERE p.id IS NULL AND c.pid IS NOT NULL",
    )
    assert orphans == [{"cid": 16}]  # the documented write-skew orphan
