"""Fig. 3(b): centralized-replicated middleware (primary + backup)."""


from repro.client import Driver
from repro.core.primary_backup import PrimaryBackupSystem
from repro.errors import TransactionAborted
from repro.testing import query


def make_system(n=3, seed=1):
    system = PrimaryBackupSystem(n_replicas=n, seed=seed)
    system.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    system.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 5)])
    return system, Driver(system.network, system.discovery)


def settle(system, seconds=3.0):
    system.sim.run(until=system.sim.now + seconds)


def db_states(system):
    return {
        node.name: tuple(
            (r["k"], r["v"])
            for r in query(system.sim, node.db, "SELECT k, v FROM kv ORDER BY k")
        )
        for node in system.nodes
    }


def test_normal_operation_replicates_to_all_databases():
    system, driver = make_system()
    sim = system.sim

    def client():
        conn = yield from driver.connect(system.new_client_host())
        assert conn.address == "mw-primary"
        yield from conn.execute("UPDATE kv SET v = 9 WHERE k = 1")
        yield from conn.commit()

    sim.run_process(client())
    settle(system)
    states = db_states(system)
    assert len(set(states.values())) == 1
    assert states["pbdb0"][0] == (1, 9)


def test_conflicting_writers_certified():
    system, driver = make_system(seed=2)
    sim = system.sim
    outcomes = []

    def client(value):
        conn = yield from driver.connect(system.new_client_host())
        try:
            yield from conn.execute("UPDATE kv SET v = ? WHERE k = 1", (value,))
            yield from conn.commit()
            outcomes.append("committed")
        except TransactionAborted:
            outcomes.append("aborted")

    sim.spawn(client(1), name="a")
    sim.spawn(client(2), name="b")
    sim.run()
    settle(system)
    assert sorted(outcomes) == ["aborted", "committed"]
    assert len(set(db_states(system).values())) == 1


def test_backup_takeover_preserves_committed_state():
    """Crash the primary after a commit: the backup re-applies whatever
    any database is missing and serves clients."""
    system, driver = make_system(seed=3)
    sim = system.sim
    log = {}

    def client():
        conn = yield from driver.connect(system.new_client_host())
        yield from conn.execute("UPDATE kv SET v = 42 WHERE k = 2")
        yield from conn.commit()
        yield sim.sleep(0.2)
        system.crash_primary()
        # next statement fails over to the backup (case 1: idle)
        result = yield from conn.execute("SELECT v FROM kv WHERE k = 2")
        yield from conn.commit()
        log["value"] = result.rows[0]["v"]
        log["address"] = conn.address

    sim.spawn(client(), name="client")
    sim.run()
    settle(system, 5.0)
    assert log["value"] == 42
    assert log["address"] == "mw-backup"
    assert system.active_name == "mw-backup"
    assert len(set(db_states(system).values())) == 1


def test_takeover_completes_partially_applied_transactions():
    """A writeset sequenced before the crash must end up on *every*
    database even if the primary died before propagating it."""
    from repro.storage.engine import CostModel

    class SlowApply(CostModel):
        def statement(self, kind, a, b, c):
            return (0.0, 0.0)

        def writeset_apply(self, n):
            return (2.0, 0.0)  # remote copies lag the local commit

        def commit(self, n):
            return (0.0, 0.0)

    system = PrimaryBackupSystem(n_replicas=3, seed=4, cost_model=lambda i: SlowApply())
    system.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    system.bulk_load("kv", [{"k": 1, "v": 0}])
    driver = Driver(system.network, system.discovery)
    sim = system.sim
    log = {}

    def client():
        conn = yield from driver.connect(system.new_client_host())
        yield from conn.execute("UPDATE kv SET v = 7 WHERE k = 1")
        yield from conn.commit()  # committed at the home DB; applies lag
        log["committed_at"] = sim.now
        system.crash_primary()  # remote applies are still in flight

    sim.spawn(client(), name="client")
    sim.run()
    settle(system, 8.0)
    states = db_states(system)
    assert set(states.values()) == {((1, 7),)}


def test_in_doubt_commit_resolved_by_backup():
    """Case 3 against the backup: commit in flight when the primary dies;
    the inquiry is answered from the mirrored certification metadata."""
    system, driver = make_system(seed=5)
    sim = system.sim
    log = {}

    def client():
        conn = yield from driver.connect(system.new_client_host())
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 3")
        sim.call_at(sim.now + 0.05, system.crash_primary)  # after multicast
        yield from conn.commit()  # resolved transparently via the backup
        log["ok"] = True

    sim.spawn(client(), name="client")
    sim.run()
    settle(system, 5.0)
    assert log["ok"]
    states = db_states(system)
    assert set(states.values()) == {((1, 0), (2, 0), (3, 5), (4, 0))}


def test_orphaned_active_transactions_are_aborted_at_takeover():
    system, driver = make_system(seed=6)
    sim = system.sim

    def client():
        conn = yield from driver.connect(system.new_client_host())
        # open a transaction and leave it hanging when the primary dies
        yield from conn.execute("UPDATE kv SET v = 99 WHERE k = 4")
        yield sim.sleep(0.5)
        system.crash_primary()
        yield sim.sleep(3.0)

    sim.spawn(client(), name="client")
    sim.run()
    settle(system, 3.0)
    # the uncommitted update is gone everywhere
    for node in system.nodes:
        assert node.db.active_count == 0
        assert query(sim, node.db, "SELECT v FROM kv WHERE k = 4") == [{"v": 0}]
