"""Online 1-copy-SI monitoring: the Def. 3 audit as a streaming check.

``si/onecopy.py`` decides *after* a run whether the per-replica histories
admit a global SI-schedule.  The :class:`OneCopyMonitor` maintains the
same constraint graph **incrementally** while the run is going: a weak
sim-timer daemon consumes each watched database's ``db.history`` (every
entry now carries its sim timestamp), derives the Def. 3 edges as
transactions commit, and flags

* ``one-copy-si`` — a constraint cycle, i.e. the §4.3.2 Ta/Tb anomaly,
  at the poll where the cycle closes (with the offending event's sim
  timestamp, not at end of run);
* ``ww-order``  — two replicas committing a ww-conflicting pair in
  different orders (a hole-order violation);
* ``rowa``      — the "same" transaction committing different writesets
  at different replicas;
* ``lost-writeset`` — an update committed somewhere but still missing at
  a watched replica ``loss_grace`` sim-seconds later.

Monitoring is read-only: the poll never yields mid-work, draws no
randomness, and notifies no gates, so a monitored run is event-identical
to an unmonitored one.  Crashed replicas are unwatched (their missing
suffix is legitimate) and the graph is rebuilt from the survivors;
already-flagged violations are never re-emitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

import networkx as nx

from repro.si.schedule import BEGIN, COMMIT


@dataclass(frozen=True)
class MonitorViolation:
    """One flagged invariant violation, stamped in simulated time."""

    kind: str
    detail: str
    #: sim time the monitor flagged it (the poll where it became visible)
    at: float
    #: sim time of the offending event itself (commit/begin)
    offending_t: float
    gids: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "at": self.at,
            "offending_t": self.offending_t,
            "gids": list(self.gids),
        }

    def __str__(self) -> str:
        return (
            f"[{self.kind}] t={self.offending_t:.6f} "
            f"(flagged at {self.at:.6f}): {self.detail}"
        )


class _Watch:
    """Cursor + per-replica event state over one database's history."""

    __slots__ = (
        "name", "db", "cursor", "events", "begin_pos", "begin_t",
        "commit_pos", "commit_t", "committed", "local", "_last_begin",
        "covered", "grace",
    )

    def __init__(self, name: str, db, covered=frozenset(), grace=None):
        self.name = name
        self.db = db
        self.cursor = 0
        #: normalized events retained for graph rebuilds after unwatch
        self.events: list[tuple] = []
        #: gids installed by durable-log replay before watching started:
        #: committed here, ordered before everything in ``db.history``,
        #: but absent from it (delta recovery re-watch)
        self.covered: frozenset = frozenset(covered)
        #: per-watch lost-writeset grace override (read-tier staleness
        #: bound); None falls back to the monitor-wide ``loss_grace``
        self.grace: Optional[float] = grace
        self.reset_derived()

    def reset_derived(self) -> None:
        self.begin_pos: dict[str, int] = {}
        self.begin_t: dict[str, float] = {}
        self.commit_pos: dict[str, int] = {}
        self.commit_t: dict[str, float] = {}
        self.committed: set[str] = set()
        self.local: set[str] = set()
        self._last_begin: dict[str, tuple[int, float, bool]] = {}


class OneCopyMonitor:
    """Streaming Def. 3 checker over the live per-replica histories."""

    def __init__(
        self,
        sim,
        interval: float = 0.05,
        loss_grace: float = 5.0,
        max_txns: int = 20_000,
        obs=None,
        on_violation: Optional[Callable[[MonitorViolation], None]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"monitor interval must be positive: {interval}")
        self.sim = sim
        self.interval = interval
        self.loss_grace = loss_grace
        self.max_txns = max_txns
        self.obs = obs
        self.on_violation = on_violation
        self.violations: list[MonitorViolation] = []
        #: a constraint cycle is permanent — latch instead of re-flagging
        self.tripped = False
        self.saturated = False
        self.polls = 0
        self._watches: dict[str, _Watch] = {}
        self._graph = nx.DiGraph()
        #: gid -> writeset / first-commit time / first-begin time
        self._update_ws: dict[str, frozenset] = {}
        self._first_commit: dict[str, float] = {}
        self._begin_time: dict[str, float] = {}
        #: gid -> (readset, home watch) for committed local readers
        self._readers: dict[str, tuple[frozenset, str]] = {}
        #: (a, b) sorted pair -> gid committed first (agreed ww order)
        self._ww_order: dict[tuple[str, str], str] = {}
        self._rf_done: set[tuple[str, str]] = set()
        #: dedup sets so a persistent condition is flagged exactly once
        self._flagged_ww: set[tuple[str, str]] = set()
        self._flagged_rowa: set[str] = set()
        self._flagged_lost: set[tuple[str, str]] = set()
        self._process = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.alive

    def start(self) -> None:
        """Spawn the polling daemon (idempotent)."""
        if self.running:
            return
        self._process = self.sim.spawn(
            self._loop(), name="obs.monitor", daemon=True
        )

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _loop(self) -> Generator[Any, Any, None]:
        while True:
            # weak tick: monitoring must never keep the simulation alive
            yield self.sim.sleep(self.interval, weak=True)
            self.poll()

    def watch(self, name: str, db, covered=None, grace=None) -> None:
        """Start consuming ``db.history`` under this replica name.

        ``covered`` names transactions already committed at this replica
        through durable-log replay (delta recovery): they precede every
        event the history will produce but never appear in it, so the
        ROWA and reads-from checks treat them as committed-before-watch
        rather than missing.

        ``grace`` overrides ``loss_grace`` for this watch alone: a lazy
        read replica advertising a staleness bound is held to it — an
        update still missing ``grace`` seconds after its first commit is
        flagged as ``lost-writeset`` even though the monitor-wide grace
        would tolerate it.
        """
        self._watches[name] = _Watch(
            name, db, covered=covered or frozenset(), grace=grace
        )

    def unwatch(self, name: str) -> None:
        """Stop auditing a replica (crashed / recovered) and rebuild the
        constraint state from the remaining watches.  Already-flagged
        violations stay flagged and are not re-emitted."""
        if self._watches.pop(name, None) is None:
            return
        self._rebuild()

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- the streaming check -----------------------------------------------------

    def poll(self) -> list[MonitorViolation]:
        """One incremental pass; returns the violations flagged by it."""
        if self.saturated:
            return []
        before = len(self.violations)
        self.polls += 1
        new_commits: list[tuple[_Watch, str]] = []
        for watch in self._watches.values():
            new_commits.extend(self._ingest(watch))
        if new_commits:
            self._derive(new_commits)
        self._check_lost()
        if len(self._first_commit) > self.max_txns:
            # bounded memory on very long runs: stop checking rather
            # than degrade the run it is observing
            self.saturated = True
        return self.violations[before:]

    def _ingest(self, watch: _Watch) -> list[tuple[_Watch, str]]:
        """Advance one watch's cursor; returns its newly committed gids."""
        history = watch.db.history
        commits = []
        while watch.cursor < len(history):
            entry = history[watch.cursor]
            watch.cursor += 1
            watch.events.append(entry)
            commits.extend(self._apply_event(watch, entry))
        return commits

    def _apply_event(self, watch: _Watch, entry: tuple) -> list[tuple[_Watch, str]]:
        position = len(watch.events)  # strictly increasing per watch
        if entry[0] == "begin":
            _kind, gid, _csn, remote, t = entry
            # a retried remote apply begins several times; the begin that
            # counts is the last one before the commit
            watch._last_begin[gid] = (position, t, remote)
            return []
        _kind, gid, _csn, readset, writeset, t = entry
        began = watch._last_begin.get(gid)
        if began is not None:
            begin_pos, begin_t, remote = began
            watch.begin_pos[gid] = begin_pos
            watch.begin_t[gid] = begin_t
            if not remote:
                watch.local.add(gid)
                self._begin_time.setdefault(gid, begin_t)
        watch.commit_pos[gid] = position
        watch.commit_t[gid] = t
        watch.committed.add(gid)
        return [(watch, gid)]

    def _derive(self, new_commits: list[tuple[_Watch, str]]) -> None:
        """Turn this poll's commits into Def. 3 constraint edges.

        Ingestion completes for *every* watch before any edge is derived,
        so position comparisons are made against a consistent prefix and
        each (writer, reader) / ww pair is decided exactly once.
        """
        added_edges = False
        new_writers: list[str] = []
        new_readers: list[str] = []
        for watch, gid in new_commits:
            entry_ws = self._writeset_of(watch, gid)
            if entry_ws:
                known = self._update_ws.get(gid)
                if known is None:
                    self._update_ws[gid] = entry_ws
                    new_writers.append(gid)
                elif known != entry_ws and gid not in self._flagged_rowa:
                    self._flagged_rowa.add(gid)
                    self._flag(
                        "rowa",
                        f"txn {gid} committed different writesets across "
                        f"replicas (seen at {watch.name})",
                        offending_t=watch.commit_t[gid],
                        gids=(gid,),
                    )
                self._first_commit.setdefault(gid, watch.commit_t[gid])
            if gid not in self._graph:
                self._graph.add_edge((BEGIN, gid), (COMMIT, gid), reason="b<c")
                added_edges = True
            readset = self._readset_of(watch, gid)
            if gid in watch.local and readset and gid not in self._readers:
                self._readers[gid] = (readset, watch.name)
                new_readers.append(gid)
        added_edges |= self._derive_ww(new_commits)
        added_edges |= self._derive_rf(new_writers, new_readers)
        if added_edges and not self.tripped:
            self._check_cycle()

    @staticmethod
    def _writeset_of(watch: _Watch, gid: str) -> frozenset:
        for entry in reversed(watch.events):
            if entry[0] == "commit" and entry[1] == gid:
                return frozenset(entry[4])
        return frozenset()

    @staticmethod
    def _readset_of(watch: _Watch, gid: str) -> frozenset:
        for entry in reversed(watch.events):
            if entry[0] == "commit" and entry[1] == gid:
                return frozenset(entry[3])
        return frozenset()

    def _derive_ww(self, new_commits: list[tuple[_Watch, str]]) -> bool:
        """Def. 3(ii.a): ww-conflicting commit orders must agree."""
        added = False
        for watch, gid in new_commits:
            ws = self._update_ws.get(gid)
            if not ws:
                continue
            for other, other_ws in self._update_ws.items():
                if other == gid or not (ws & other_ws):
                    continue
                if other not in watch.committed:
                    continue
                first = (
                    gid
                    if watch.commit_pos[gid] < watch.commit_pos[other]
                    else other
                )
                pair = (gid, other) if gid < other else (other, gid)
                agreed = self._ww_order.get(pair)
                if agreed is None:
                    self._ww_order[pair] = first
                    second = other if first == gid else gid
                    self._graph.add_edge(
                        (COMMIT, first), (COMMIT, second), reason="ww"
                    )
                    self._graph.add_edge(
                        (COMMIT, first), (BEGIN, second), reason="ww-noconc"
                    )
                    added = True
                elif agreed != first and pair not in self._flagged_ww:
                    self._flagged_ww.add(pair)
                    self._flag(
                        "ww-order",
                        f"replicas disagree on the commit order of the "
                        f"ww-conflicting pair {pair[0]},{pair[1]} "
                        f"({watch.name} commits {first} first)",
                        offending_t=watch.commit_t[gid],
                        gids=pair,
                    )
        return added

    def _derive_rf(self, new_writers: list[str], new_readers: list[str]) -> bool:
        """Def. 3(ii.b): each local reader's reads-from relation.

        A (writer, reader) pair is decided exactly once, from the
        reader's home schedule: if the writer's commit is not (yet)
        recorded there, every future commit lands at a later position
        than the reader's already-recorded begin, so the begin comes
        first either way.
        """
        added = False
        pairs: list[tuple[str, str]] = []
        for reader in new_readers:
            readset, _home = self._readers[reader]
            for writer, ws in self._update_ws.items():
                if writer != reader and (ws & readset):
                    pairs.append((writer, reader))
        for writer in new_writers:
            ws = self._update_ws[writer]
            for reader, (readset, _home) in self._readers.items():
                if writer != reader and (ws & readset):
                    pairs.append((writer, reader))
        for writer, reader in pairs:
            if (writer, reader) in self._rf_done:
                continue
            self._rf_done.add((writer, reader))
            home = self._watches.get(self._readers[reader][1])
            if home is None:
                continue
            writer_commit = home.commit_pos.get(writer)
            reader_begin = home.begin_pos.get(reader)
            if reader_begin is None:
                continue
            if writer_commit is not None and writer_commit < reader_begin:
                self._graph.add_edge(
                    (COMMIT, writer), (BEGIN, reader), reason="rf"
                )
            elif writer_commit is None and writer in home.covered:
                # the writer landed during the home replica's log replay:
                # it committed before the watch (and thus the begin) even
                # though the history never shows it
                self._graph.add_edge(
                    (COMMIT, writer), (BEGIN, reader), reason="rf"
                )
            else:
                self._graph.add_edge(
                    (BEGIN, reader), (COMMIT, writer), reason="not-rf"
                )
            added = True
        return added

    def _check_cycle(self) -> None:
        try:
            cycle = nx.find_cycle(self._graph)
        except nx.NetworkXNoCycle:
            return
        self.tripped = True
        nodes = [edge[0] for edge in cycle]
        times = [self._event_time(node) for node in nodes]
        offending = max((t for t in times if t is not None), default=self.sim.now)
        chain = " -> ".join(f"{kind}{gid}" for kind, gid in nodes)
        self._flag(
            "one-copy-si",
            f"constraint cycle {chain}; latest event at t={offending:.6f}",
            offending_t=offending,
            gids=tuple(dict.fromkeys(gid for _kind, gid in nodes)),
        )

    def _event_time(self, node: tuple) -> Optional[float]:
        kind, gid = node
        if kind == COMMIT:
            return self._first_commit.get(gid)
        return self._begin_time.get(gid)

    def _check_lost(self) -> None:
        """An update committed somewhere must reach every watched replica
        within ``loss_grace`` sim-seconds (ROWA)."""
        now = self.sim.now
        min_grace = min(
            (w.grace for w in self._watches.values() if w.grace is not None),
            default=self.loss_grace,
        )
        floor = min(self.loss_grace, min_grace)
        for gid, first_t in self._first_commit.items():
            if now - first_t <= floor:
                continue
            for watch in self._watches.values():
                grace = watch.grace if watch.grace is not None else self.loss_grace
                if now - first_t <= grace:
                    continue
                if gid in watch.committed or gid in watch.covered:
                    continue
                key = (gid, watch.name)
                if key in self._flagged_lost:
                    continue
                self._flagged_lost.add(key)
                self._flag(
                    "lost-writeset",
                    f"update {gid} committed at t={first_t:.6f} but still "
                    f"missing at {watch.name} after {grace:.1f}s",
                    offending_t=first_t,
                    gids=(gid,),
                )

    # -- plumbing ----------------------------------------------------------------

    def _flag(
        self, kind: str, detail: str, offending_t: float, gids: tuple[str, ...]
    ) -> None:
        violation = MonitorViolation(
            kind=kind,
            detail=detail,
            at=self.sim.now,
            offending_t=offending_t,
            gids=gids,
        )
        self.violations.append(violation)
        if self.obs is not None:
            self.obs.registry.counter("monitor.violations").inc()
            self.obs.events.emit(
                "monitor_violation",
                kind=kind,
                detail=detail,
                offending_t=offending_t,
                gids=list(gids),
            )
        if self.on_violation is not None:
            self.on_violation(violation)

    def _rebuild(self) -> None:
        """Recompute the constraint state from the remaining watches.

        Flagged-violation dedup sets and the cycle latch survive, so a
        rebuild never re-emits what was already reported.
        """
        self._graph = nx.DiGraph()
        self._update_ws = {}
        self._first_commit = {}
        self._begin_time = {}
        self._readers = {}
        self._ww_order = {}
        self._rf_done = set()
        commits: list[tuple[_Watch, str]] = []
        for watch in self._watches.values():
            events = watch.events
            watch.events = []
            watch.reset_derived()
            for entry in events:
                watch.events.append(entry)
                commits.extend(self._apply_event(watch, entry))
        if commits and not self.tripped:
            self._derive(commits)

    def summary(self) -> dict:
        return {
            "polls": self.polls,
            "watched": sorted(self._watches),
            "transactions": len(self._first_commit),
            "tripped": self.tripped,
            "saturated": self.saturated,
            "violations": [v.to_dict() for v in self.violations],
        }
