"""Discovery service tests."""

from repro.gcs import DiscoveryService
from repro.sim import Simulator


def discover(sim, service):
    return sim.run_process(service.discover())


def test_empty_discovery():
    sim = Simulator()
    service = DiscoveryService(sim)
    assert discover(sim, service) == []


def test_register_and_discover():
    sim = Simulator()
    service = DiscoveryService(sim)
    service.register("a")
    service.register("b")
    assert sorted(discover(sim, service)) == ["a", "b"]


def test_unregister():
    sim = Simulator()
    service = DiscoveryService(sim)
    service.register("a")
    service.register("b")
    service.unregister("a")
    service.unregister("missing")  # no-op
    assert discover(sim, service) == ["b"]


def test_overloaded_replica_declines():
    """'Replicas that are able to handle additional workload respond.'"""
    sim = Simulator()
    service = DiscoveryService(sim)
    load = {"busy": True}
    service.register("a", accepts_load=lambda: not load["busy"])
    service.register("b")
    assert discover(sim, service) == ["b"]
    load["busy"] = False
    assert sorted(discover(sim, service)) == ["a", "b"]


def test_discovery_costs_a_round_trip():
    sim = Simulator()
    service = DiscoveryService(sim, round_trip=0.005)
    service.register("a")

    def proc():
        addresses = yield from service.discover()
        return addresses, sim.now

    addresses, at = sim.run_process(proc())
    assert addresses == ["a"]
    assert at == 0.005


def test_roles_are_disjoint_views():
    """Read replicas register under role="read"; the default (write)
    discovery never sees them and vice versa."""
    sim = Simulator()
    service = DiscoveryService(sim)
    service.register("R0")
    service.register("R1", role="write")
    service.register("Rr0", role="read")
    assert sorted(discover(sim, service)) == ["R0", "R1"]
    assert sim.run_process(service.discover(role="read")) == ["Rr0"]
    assert sim.run_process(service.discover(role="other")) == []


def test_reader_churn_leaves_write_view_untouched():
    """Joining/leaving read replicas must not disturb the voting
    membership view the driver's failover case analysis relies on."""
    sim = Simulator()
    service = DiscoveryService(sim)
    for name in ("R0", "R1", "R2"):
        service.register(name)
    before = sorted(discover(sim, service))
    for round_ in range(3):
        service.register(f"Rr{round_}", role="read")
        assert sorted(discover(sim, service)) == before
    service.unregister("Rr0")
    service.unregister("Rr1")
    assert sorted(discover(sim, service)) == before
    assert sim.run_process(service.discover(role="read")) == ["Rr2"]
    # and symmetrically: a crashing voting replica never dents the read view
    service.unregister("R1")
    assert sim.run_process(service.discover(role="read")) == ["Rr2"]


def test_read_role_honors_accepts_load():
    sim = Simulator()
    service = DiscoveryService(sim)
    lagging = {"Rr0": True}
    service.register(
        "Rr0", accepts_load=lambda: not lagging["Rr0"], role="read"
    )
    service.register("Rr1", role="read")
    assert sim.run_process(service.discover(role="read")) == ["Rr1"]
    lagging["Rr0"] = False
    assert sorted(sim.run_process(service.discover(role="read"))) == ["Rr0", "Rr1"]
