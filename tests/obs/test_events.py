"""Unit tests for the bounded protocol-milestone event log."""

import io
import json

from repro.obs import EventLog
from repro.sim import Simulator


def make(capacity=10_000):
    sim = Simulator(seed=0)
    return sim, EventLog(sim, capacity=capacity)


def test_emit_stamps_sim_time_and_fields():
    sim, log = make()
    row = log.emit("validation", replica="R0", gid="g1", outcome="commit")
    assert row == {
        "t": 0.0,
        "event": "validation",
        "replica": "R0",
        "gid": "g1",
        "outcome": "commit",
    }
    assert len(log) == 1
    assert log.counts == {"validation": 1}


def test_ring_eviction_keeps_counts_exact():
    sim, log = make(capacity=5)
    for i in range(8):
        log.emit("view_change", view=i)
    assert len(log) == 5  # ring bounded
    assert log.emitted == 8
    assert log.counts == {"view_change": 8}  # totals survive eviction
    # what's retained is the most recent tail
    assert [row["view"] for row in log.tail()] == [3, 4, 5, 6, 7]


def test_of_kind_and_tail():
    sim, log = make()
    log.emit("validation", gid="a")
    log.emit("inquiry", gid="b")
    log.emit("validation", gid="c")
    assert [row["gid"] for row in log.of_kind("validation")] == ["a", "c"]
    assert [row["gid"] for row in log.tail(2)] == ["b", "c"]


def test_to_jsonl_is_strict_json():
    sim, log = make()
    log.emit("validation", gid="g1", outcome="abort")
    log.emit("recovery_state_sent", pending=float("nan"))  # sanitised
    lines = log.to_jsonl().splitlines()
    assert len(lines) == 2
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["event"] == "validation"
    assert parsed[1]["pending"] is None


def test_dump_to_path_and_file_object(tmp_path):
    sim, log = make()
    log.emit("view_change", members=["R0", "R1"])
    path = tmp_path / "events.jsonl"
    assert log.dump(str(path)) == 1
    assert json.loads(path.read_text().strip())["event"] == "view_change"
    buffer = io.StringIO()
    assert log.dump(buffer) == 1
    assert buffer.getvalue().endswith("\n")


def test_dump_empty_log(tmp_path):
    sim, log = make()
    path = tmp_path / "events.jsonl"
    assert log.dump(str(path)) == 0
    assert path.read_text() == ""
