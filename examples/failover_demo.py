"""Failover: the §5.4 case analysis, live.

A client works against a 3-replica cluster while the replica serving it
crashes at three different moments:

* **case 1** — while the connection is idle: the driver reconnects and
  the client never notices;
* **case 2** — mid-transaction: the transaction is lost, the client gets
  an exception and simply restarts it on the same connection;
* **case 3** — during the commit call: the driver asks a survivor about
  the in-doubt transaction by its identifier; depending on whether the
  writeset made it to the sequencer the commit either completes
  transparently (3b) or raises "did not commit" (3a).

Run:  python examples/failover_demo.py
"""

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.errors import ConnectionLost, TransactionOutcomeUnknownAborted
from repro.testing import query


def fresh_cluster(seed):
    cluster = SIRepCluster(ClusterConfig(n_replicas=3, seed=seed))
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 4)])
    return cluster, Driver(cluster.network, cluster.discovery)


def case1_idle():
    print("case 1: crash while idle — fully transparent")
    cluster, driver = fresh_cluster(seed=1)
    sim = cluster.sim

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        yield sim.sleep(1.0)  # crash happens here, between transactions
        result = yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        print(f"  read {result.rows} via {conn.address} "
              f"after {conn.failovers} transparent failover(s)")

    sim.call_at(0.5, lambda: cluster.crash(0))
    sim.run_process(client())


def case2_mid_transaction():
    print("case 2: crash mid-transaction — transaction lost, restartable")
    cluster, driver = fresh_cluster(seed=2)
    sim = cluster.sim

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 111 WHERE k = 1")
        yield sim.sleep(1.0)  # crash strikes while the txn is open
        try:
            yield from conn.execute("UPDATE kv SET v = 222 WHERE k = 2")
        except ConnectionLost as err:
            print(f"  got: {type(err).__name__}: {err}")
        # restart the business transaction on the same connection
        yield from conn.execute("UPDATE kv SET v = 111 WHERE k = 1")
        yield from conn.commit()
        print(f"  restarted and committed via {conn.address}")

    sim.call_at(0.5, lambda: cluster.crash(0))
    sim.run_process(client())
    sim.run(until=sim.now + 2.0)
    survivor = cluster.alive_replicas()[0]
    print("  survivor state:", query(sim, survivor.node.db,
                                     "SELECT k, v FROM kv ORDER BY k"))


def case3a_commit_lost():
    print("case 3a: crash during commit, writeset never sequenced")
    cluster, driver = fresh_cluster(seed=3)
    sim = cluster.sim

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        sim.call_at(sim.now, lambda: cluster.crash(0))  # kill it *now*
        try:
            yield from conn.commit()
            print("  unexpected: commit succeeded")
        except TransactionOutcomeUnknownAborted as err:
            print(f"  got (after the view change confirmed the crash at "
                  f"t={sim.now:.2f}s): {type(err).__name__}")

    sim.run_process(client())
    sim.run(until=sim.now + 2.0)
    survivor = cluster.alive_replicas()[0]
    print("  survivor sees k=1 ->",
          query(sim, survivor.node.db, "SELECT v FROM kv WHERE k = 1"))


def case3b_commit_survives():
    print("case 3b: crash during commit, writeset already sequenced")
    cluster, driver = fresh_cluster(seed=4)
    sim = cluster.sim

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 7 WHERE k = 1")
        sim.call_at(sim.now + 0.05, lambda: cluster.crash(0))  # after multicast
        yield from conn.commit()
        print(f"  commit returned successfully "
              f"(failovers used: {conn.failovers})")

    sim.run_process(client())
    sim.run(until=sim.now + 3.0)
    for replica in cluster.alive_replicas():
        print(f"  {replica.name} sees k=1 ->",
              query(sim, replica.node.db, "SELECT v FROM kv WHERE k = 1"))


def main() -> None:
    case1_idle()
    print()
    case2_mid_transaction()
    print()
    case3a_commit_lost()
    print()
    case3b_commit_survives()


if __name__ == "__main__":
    main()
