"""One experiment = system + workload + offered load -> measured point."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core import ClusterConfig, SIRepCluster
from repro.core.baselines import CentralizedSystem, TableLockSystem
from repro.storage.engine import CostModel
from repro.workloads import ClientPool, ProcClientPool, Workload
from repro.workloads.stats import Stats


@dataclass
class LoadPoint:
    """One measured point of a response-time-vs-load sweep."""

    system: str
    load_tps: float
    throughput: float
    mean_rt_ms: dict[str, float]
    abort_rate: float
    extras: dict = field(default_factory=dict)

    def rt(self, category: str) -> float:
        return self.mean_rt_ms.get(category, float("nan"))


def _n_clients(load: float, expected_rt: float = 0.5) -> int:
    """Enough closed-loop clients to offer ``load`` tps even when the
    response time grows towards saturation."""
    return max(8, int(load * expected_rt) + 4)


def _collect(name: str, load: float, stats: Stats, **extras) -> LoadPoint:
    return LoadPoint(
        system=name,
        load_tps=load,
        throughput=stats.throughput(),
        mean_rt_ms={
            category: data["mean_ms"] for category, data in stats.summary().items()
        },
        abort_rate=stats.abort_rate(),
        extras=extras,
    )


def run_sirep(
    workload: Workload,
    load: float,
    n_replicas: int = 5,
    hole_sync: bool = True,
    cost_model: Optional[Callable[[], CostModel]] = None,
    with_disk: bool = False,
    duration: float = 10.0,
    warmup: float = 2.0,
    seed: int = 0,
    label: Optional[str] = None,
) -> LoadPoint:
    """Measure SRCA-Rep (or SRCA-Opt with hole_sync=False) at one load."""
    cluster = SIRepCluster(
        ClusterConfig(
            n_replicas=n_replicas,
            hole_sync=hole_sync,
            seed=seed,
            cost_model=(lambda _i: cost_model()) if cost_model else None,
            with_disk=with_disk,
        )
    )
    workload.install(cluster)
    pool = ClientPool(
        cluster, workload, _n_clients(load), load, duration, warmup=warmup
    )
    stats = pool.run()
    name = label or ("SRCA-Rep" if hole_sync else "SRCA-Opt")
    return _collect(
        name,
        load,
        stats,
        hole_wait_fraction=cluster.hole_wait_fraction(),
        certification_aborts=cluster.total_certification_aborts(),
    )


def run_centralized(
    workload: Workload,
    load: float,
    cost_model: Optional[Callable[[], CostModel]] = None,
    with_disk: bool = False,
    duration: float = 10.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> LoadPoint:
    """Measure the single-database passthrough baseline at one load."""
    system = CentralizedSystem(
        seed=seed,
        cost_model=cost_model() if cost_model else None,
        with_disk=with_disk,
    )
    workload.install(system)
    pool = ClientPool(
        system, workload, _n_clients(load), load, duration, warmup=warmup
    )
    stats = pool.run()
    return _collect("centralized", load, stats)


def run_kernel(
    workload: Workload,
    load: float,
    n_replicas: int = 5,
    cost_model: Optional[Callable[[], CostModel]] = None,
    duration: float = 10.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> LoadPoint:
    """Measure the Postgres-R(SI)-style kernel comparator at one load."""
    from repro.core.kernel_replication import KernelReplicatedSystem

    system = KernelReplicatedSystem(
        n_replicas=n_replicas,
        seed=seed,
        cost_model=(lambda _i: cost_model()) if cost_model else None,
    )
    workload.install(system)
    pool = ClientPool(
        system, workload, _n_clients(load), load, duration, warmup=warmup
    )
    stats = pool.run()
    return _collect("Postgres-R(SI)-style", load, stats)


def run_until_confident(
    run_point: Callable[[int], LoadPoint],
    category: str = "update",
    rel_half_width: float = 0.05,
    min_seeds: int = 3,
    max_seeds: int = 12,
) -> tuple[LoadPoint, float]:
    """The paper's stopping rule: "all tests were run until a 95/5
    confidence interval was achieved."

    Repeats ``run_point(seed)`` over seeds until the 95% confidence
    interval of the chosen category's mean response time is within
    ``rel_half_width`` of the mean (or ``max_seeds`` is hit).  Returns a
    LoadPoint whose response times and throughput are seed-averages, and
    the achieved relative half-width.
    """
    from repro.workloads.stats import mean_confidence_interval

    points: list[LoadPoint] = []
    achieved = float("inf")
    for seed in range(max_seeds):
        points.append(run_point(seed))
        if len(points) < min_seeds:
            continue
        samples = [p.rt(category) for p in points]
        mean, half = mean_confidence_interval(samples)
        achieved = half / mean if mean else float("inf")
        if achieved <= rel_half_width:
            break
    categories = set()
    for p in points:
        categories.update(p.mean_rt_ms)
    averaged = LoadPoint(
        system=points[0].system,
        load_tps=points[0].load_tps,
        throughput=sum(p.throughput for p in points) / len(points),
        mean_rt_ms={
            c: sum(p.mean_rt_ms.get(c, 0.0) for p in points) / len(points)
            for c in categories
        },
        abort_rate=sum(p.abort_rate for p in points) / len(points),
        extras={"seeds": len(points), "rel_ci": achieved},
    )
    return averaged, achieved


def run_tablelock(
    workload: Workload,
    load: float,
    n_replicas: int = 5,
    cost_model: Optional[Callable[[], CostModel]] = None,
    with_disk: bool = False,
    duration: float = 10.0,
    warmup: float = 2.0,
    seed: int = 0,
) -> LoadPoint:
    """Measure the [20] table-locking protocol at one load."""
    system = TableLockSystem(
        workload.procedures(),
        n_replicas=n_replicas,
        seed=seed,
        cost_model=(lambda _i: cost_model()) if cost_model else None,
        with_disk=with_disk,
    )
    workload.install(system)
    pool = ProcClientPool(
        system, workload, _n_clients(load), load, duration, warmup=warmup
    )
    stats = pool.run()
    return _collect("protocol of [20]", load, stats)
