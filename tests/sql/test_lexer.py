"""Tokenizer tests."""

import pytest

from repro.errors import SQLError
from repro.sql.lexer import END, IDENT, KW, NUMBER, PARAM, PUNCT, STRING, tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_keywords_case_insensitive():
    assert kinds("select") == [(KW, "SELECT")]
    assert kinds("SeLeCt") == [(KW, "SELECT")]


def test_identifiers_preserve_case():
    assert kinds("myTable _x col2") == [
        (IDENT, "myTable"), (IDENT, "_x"), (IDENT, "col2"),
    ]


def test_numbers_int_and_float():
    assert kinds("42 3.14 0.5") == [(NUMBER, 42), (NUMBER, 3.14), (NUMBER, 0.5)]


def test_scientific_notation_floats():
    assert kinds("1e3 2.5E-2 7e+1 1e") == [
        (NUMBER, 1000.0), (NUMBER, 0.025), (NUMBER, 70.0),
        (NUMBER, 1), (IDENT, "e"),  # bare 'e' is not an exponent
    ]


def test_string_literals_with_escaped_quote():
    assert kinds("'hello' 'it''s'") == [(STRING, "hello"), (STRING, "it's")]


def test_unterminated_string_rejected():
    with pytest.raises(SQLError, match="unterminated"):
        tokenize("'oops")


def test_params_and_punctuation():
    assert kinds("a >= ? <> !=") == [
        (IDENT, "a"), (PUNCT, ">="), (PARAM, None), (PUNCT, "<>"), (PUNCT, "!="),
    ]


def test_dotted_names():
    assert kinds("t.col") == [(IDENT, "t"), (PUNCT, "."), (IDENT, "col")]


def test_number_followed_by_dot_punct():
    # "1." where the dot is not part of the number
    assert kinds("1.x") == [(NUMBER, 1), (PUNCT, "."), (IDENT, "x")]


def test_unexpected_character_rejected():
    with pytest.raises(SQLError, match="unexpected character"):
        tokenize("select @")


def test_end_token_always_present():
    assert tokenize("")[-1].kind == END
    assert tokenize("select")[-1].kind == END
