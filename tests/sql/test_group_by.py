"""GROUP BY / HAVING executor tests."""

import pytest

from repro.errors import SQLError
from repro.sim import Simulator
from repro.storage import Database
from repro.testing import query, run_txn


@pytest.fixture
def env():
    sim = Simulator(seed=1)
    db = Database(sim, name="db")
    run_txn(
        sim, db,
        [
            (
                "CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, "
                "product TEXT, amount INT)",
            ),
            (
                "INSERT INTO sales (id, region, product, amount) VALUES "
                "(1, 'east', 'pen', 10), (2, 'east', 'book', 30), "
                "(3, 'west', 'pen', 20), (4, 'west', 'book', 40), "
                "(5, 'west', 'pen', 5), (6, 'north', 'ink', 7)",
            ),
        ],
    )
    return sim, db


def test_group_by_with_aggregates(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM sales "
        "GROUP BY region ORDER BY region",
    )
    assert rows == [
        {"region": "east", "n": 2, "total": 40},
        {"region": "north", "n": 1, "total": 7},
        {"region": "west", "n": 3, "total": 65},
    ]


def test_group_by_multiple_columns(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT region, product, SUM(amount) AS s FROM sales "
        "GROUP BY region, product ORDER BY region, product",
    )
    assert rows[0] == {"region": "east", "product": "book", "s": 30}
    assert len(rows) == 5


def test_group_by_with_where_filter(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT region, COUNT(*) AS n FROM sales WHERE amount > 9 "
        "GROUP BY region ORDER BY region",
    )
    assert rows == [{"region": "east", "n": 2}, {"region": "west", "n": 2}]


def test_having_on_aggregate(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
        "HAVING SUM(amount) > 10 ORDER BY total DESC",
    )
    assert rows == [
        {"region": "west", "total": 65},
        {"region": "east", "total": 40},
    ]


def test_having_with_count_comparison(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT region FROM sales GROUP BY region HAVING COUNT(*) >= 2 "
        "ORDER BY region",
    )
    assert rows == [{"region": "east"}, {"region": "west"}]


def test_group_by_without_aggregates_is_distinct(env):
    sim, db = env
    rows = query(sim, db, "SELECT product FROM sales GROUP BY product ORDER BY product")
    assert rows == [{"product": "book"}, {"product": "ink"}, {"product": "pen"}]


def test_group_by_limit(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT region, SUM(amount) AS s FROM sales GROUP BY region "
        "ORDER BY s DESC LIMIT 1",
    )
    assert rows == [{"region": "west", "s": 65}]


def test_best_sellers_style_query(env):
    """The TPC-W best-sellers shape: join + group + order + limit."""
    sim, db = env
    run_txn(
        sim, db,
        [
            ("CREATE TABLE products (name TEXT PRIMARY KEY, price INT)",),
            (
                "INSERT INTO products (name, price) VALUES "
                "('pen', 2), ('book', 15), ('ink', 5)",
            ),
        ],
    )
    rows = query(
        sim, db,
        "SELECT s.product, SUM(s.amount) AS sold FROM sales s "
        "JOIN products p ON s.product = p.name "
        "WHERE p.price < 10 GROUP BY s.product ORDER BY sold DESC",
    )
    assert rows == [{"product": "pen", "sold": 35}, {"product": "ink", "sold": 7}]


def test_ungrouped_column_rejected(env):
    sim, db = env
    with pytest.raises(SQLError, match="GROUP BY"):
        query(sim, db, "SELECT region, amount FROM sales GROUP BY region")


def test_order_by_non_output_column_rejected(env):
    sim, db = env
    with pytest.raises(SQLError, match="ORDER BY"):
        query(
            sim, db,
            "SELECT region, COUNT(*) AS n FROM sales GROUP BY region "
            "ORDER BY amount",
        )


def test_plain_aggregate_still_works(env):
    sim, db = env
    rows = query(sim, db, "SELECT COUNT(*) AS n, MAX(amount) AS m FROM sales")
    assert rows == [{"n": 6, "m": 40}]


def test_group_by_empty_table(env):
    sim, db = env
    run_txn(sim, db, [("DELETE FROM sales",)])
    rows = query(
        sim, db, "SELECT region, COUNT(*) AS n FROM sales GROUP BY region"
    )
    assert rows == []
