"""Certifier salvage (cert refresh) edge cases.

Salvage commutes a transaction past a conflicting predecessor only when
the conflict touches nothing the transaction read: every conflicting key
blind, no tombstoned key, no dependent read overwritten in the shift
interval.  These tests pin each refusal reason and the state that must
survive clone/checkpoint so recovered incarnations decide identically.
"""

from repro.core.validation import Certifier, WsRecord
from repro.durable.checkpoint import Checkpoint
from repro.storage.writeset import DELETE, UPDATE, WriteOp, WriteSet


def ws(*keys, op=UPDATE):
    return WriteSet([WriteOp("t", k, op, {"k": k, "v": 0}) for k in keys])


def key(k):
    return ("t", k)


def blind_record(gid, *keys, cert=0, readset=()):
    writeset = ws(*keys)
    return WsRecord(
        gid,
        writeset,
        cert=cert,
        blind=writeset.keys,
        readset=frozenset(readset),
    )


def test_blind_conflict_is_salvaged():
    certifier = Certifier(salvage=True)
    assert certifier.validate(blind_record("g1", 1))
    record = blind_record("g2", 1, cert=0)  # concurrent with g1
    assert certifier.validate(record)
    assert record.salvaged
    assert record.cert == 1  # refreshed to the pre-validation tid
    assert record.tid == 2
    assert certifier.salvaged == 1
    assert certifier.rejected == 0


def test_salvage_off_still_aborts_blind_conflicts():
    certifier = Certifier()  # knob defaulted off
    assert certifier.validate(blind_record("g1", 1))
    record = blind_record("g2", 1, cert=0)
    assert not certifier.validate(record)
    assert not record.salvaged
    assert certifier.salvage_rejects == 0  # counter is salvage-mode only


def test_rmw_conflicting_key_still_aborts():
    """First-committer-wins is load-bearing for values the loser read:
    a conflicting key that is not blind (or is in the readset) aborts."""
    certifier = Certifier(salvage=True)
    assert certifier.validate(blind_record("g1", 1))
    rmw = WsRecord("g2", ws(1), cert=0)  # empty blind set: v = v + 1 style
    assert not certifier.validate(rmw)
    assert certifier.salvage_rejects == 1
    # explicit read of the written key (SELECT then UPDATE) also aborts
    read_then_write = WsRecord(
        "g3", ws(1), cert=0, blind=ws(1).keys, readset=frozenset({key(1)})
    )
    assert not certifier.validate(read_then_write)
    assert certifier.salvage_rejects == 2
    assert certifier.salvaged == 0


def test_stale_dependent_read_blocks_salvage():
    """Blind conflicting key, but the txn *read* another key that was
    overwritten in the shift interval — its after images may depend on a
    value that is no longer current, so the shift is not invisible."""
    certifier = Certifier(salvage=True)
    assert certifier.validate(blind_record("g1", 1, 2))  # tid 1 writes 1,2
    record = blind_record("g2", 1, cert=0, readset=frozenset({key(2)}))
    assert not certifier.validate(record)
    assert certifier.salvage_rejects == 1
    # same record without the stale read salvages fine
    assert certifier.validate(blind_record("g3", 1, cert=0))
    assert certifier.salvaged == 1


def test_tombstoned_key_blocks_salvage():
    """A blind after image cannot commute past a DELETE of its row."""
    certifier = Certifier(salvage=True)
    deleter = WsRecord("g1", ws(1, op=DELETE), cert=0)
    assert certifier.validate(deleter)
    record = blind_record("g2", 1, cert=0)
    assert not certifier.validate(record)
    assert certifier.salvage_rejects == 1
    # a fresh-cert write over the tombstone clears it again
    assert certifier.validate(blind_record("g3", 1, cert=certifier.last_validated_tid))
    assert certifier.validate(blind_record("g4", 1, cert=0))  # salvaged now
    assert certifier.salvaged == 1


def test_partially_blind_writeset_aborts():
    """One conflicting key blind, another RMW: the whole txn aborts."""
    certifier = Certifier(salvage=True)
    assert certifier.validate(blind_record("g1", 1, 2))
    writeset = ws(1, 2)
    record = WsRecord(
        "g2", writeset, cert=0, blind=frozenset({key(1)})  # key 2 is RMW
    )
    assert not certifier.validate(record)
    assert certifier.salvage_rejects == 1


def test_failed_salvage_leaves_no_trace():
    certifier = Certifier(salvage=True)
    assert certifier.validate(blind_record("g1", 1))
    rmw = WsRecord("g2", ws(1, 5), cert=0)
    assert not certifier.validate(rmw)
    assert rmw.cert == 0 and not rmw.salvaged  # record untouched
    # key 5 was never certified by the failed g2
    assert certifier.validate(blind_record("g3", 5, cert=0))


def test_clone_carries_salvage_state():
    """Recovery state transfer: the clone must reach the same salvage
    decisions as the donor — same mode, same tombstones."""
    donor = Certifier(salvage=True)
    assert donor.validate(WsRecord("g1", ws(1, op=DELETE), cert=0))
    assert donor.validate(blind_record("g2", 2))
    clone = donor.clone()
    assert clone.salvage is True
    assert clone._deleted == donor._deleted
    for certifier in (donor, clone):
        tomb = blind_record("t1", 1, cert=0)
        assert not certifier.validate(tomb)  # tombstone refusal survives
        fine = blind_record("t2", 2, cert=0)
        assert certifier.validate(fine) and fine.salvaged
    assert donor.last_validated_tid == clone.last_validated_tid


def test_checkpoint_roundtrips_tombstones():
    certifier = Certifier(salvage=True)
    assert certifier.validate(WsRecord("g1", ws(1, op=DELETE), cert=0))
    assert certifier.validate(WsRecord("g2", ws(2), cert=1))
    checkpoint = Checkpoint.capture(
        seq=2, cert_seq=2, applied_beyond=(), csn=2, ddl=(),
        rows={}, certifier=certifier, outcomes={},
    )
    assert checkpoint.cert_deleted == (("t", 1),)
    restored = Checkpoint.from_json(checkpoint.to_json())
    assert set(restored.cert_deleted) == certifier._deleted
    # a certifier rebuilt from the restored checkpoint refuses the same
    # salvage the live one would
    rebuilt = Certifier(salvage=True)
    rebuilt.last_validated_tid = restored.cert_tid
    rebuilt._last_writer = dict(restored.cert_last_writer)
    rebuilt._deleted = set(restored.cert_deleted)
    live_probe = blind_record("p", 1, cert=0)
    rebuilt_probe = blind_record("p", 1, cert=0)
    assert certifier.validate(live_probe) == rebuilt.validate(rebuilt_probe)
