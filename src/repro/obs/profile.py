"""Critical-path latency attribution over the causal span trees.

The span tracer (``repro.obs.trace``) records *where a transaction was*;
this module answers *where its milliseconds went*.  For every traced
transaction it folds the span tree into a *phase attribution*: each
instant of the root interval is charged to exactly one protocol phase —

* ``hole_start_wait`` — adjustment-3 stall before the snapshot begins,
* ``local_execution`` — statements executing at the home replica,
* ``sequencing`` — multicast to total-order position (GCS sequencer),
* ``fanout`` — sequenced to delivered (bus fan-out + batch window),
* ``certify`` — certification itself (instantaneous bookkeeping in the
  simulator: its cost shows up as queueing, and the report says so),
* ``commit_queue`` — validated but waiting behind queue predecessors,
* ``commit`` — the install + (group-)commit force, and, for routed
  reads,
* ``read_admission`` — FIFO admission-queue wait at the driver,
* ``staleness_wait`` — watermark wait (session token / staleness bound)
  at the serving replica.

Anything not covered by a span is ``other``.  The attribution is a
*sweep* over the root interval: overlapping spans are resolved by phase
priority, so nothing is ever double-counted and the per-phase times sum
to the end-to-end latency **exactly** (asserted in tests to 1%, achieved
to float epsilon).  This is the per-phase protocol-cost methodology of
the NMSI evaluation (Ardekani et al.) applied to SI-Rep: the §6 figures
report end-to-end response time; the profiler explains it.

The aggregate :class:`ProfileReport` adds queueing diagnostics derived
from the existing gauge time-series: per-replica CPU utilization and a
Little's-law consistency check of the sampled ``tocommit_depth`` against
observed throughput × queue sojourn — when the two disagree, the sampler
or the attribution is lying, and the report flags it.

Everything here is read-only post-processing: it consumes finished spans
(live ``Tracer`` objects, ``Span`` instances, or the dicts of a JSONL
export) and never touches the simulation.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.obs.metrics import quantile, sanitize

#: canonical phase order (report columns, rendering)
PHASES = (
    "hole_start_wait",
    "local_execution",
    "sequencing",
    "fanout",
    "certify",
    "commit_queue",
    "commit",
    "read_admission",
    "staleness_wait",
    "other",
)

#: span name -> phase.  ``gcs`` is the container around sequencing +
#: fanout: it maps to ``fanout`` at the LOWEST priority so its children
#: claim their sub-intervals first and only the residual (delivery gaps)
#: falls to fanout.  ``apply`` is the re-homed/remote install work —
#: same phase as ``commit``.
NAME_TO_PHASE = {
    "hole_start_wait": "hole_start_wait",
    "local_execution": "local_execution",
    "writeset_extract": "local_execution",
    "local_validation": "certify",
    "gcs_sequencing": "sequencing",
    "gcs_fanout": "fanout",
    "gcs": "fanout",
    "certify": "certify",
    "commit_queue": "commit_queue",
    "commit": "commit",
    "apply": "commit",
    "read_admission": "read_admission",
    "staleness_wait": "staleness_wait",
    "read_serve": "local_execution",
    "read_commit": "commit",
    "route_statement": "local_execution",
}

#: overlap resolution: lower index wins.  ``gcs`` (fallback fanout) is
#: injected at the very end so explicit sequencing/fanout children beat it.
_PRIORITY = [
    "hole_start_wait",
    "read_admission",
    "staleness_wait",
    "sequencing",
    "certify",
    "commit_queue",
    "commit",
    "local_execution",
    "fanout",
]

#: span names that open a new attribution tree
ROOT_NAMES = ("txn", "read_txn", "deliver", "route", "inquiry")

#: cross-replica (link-edge) spans pulled INTO a root's attribution: the
#: client genuinely blocks on these even though they run on another
#: replica.  Remote ``deliver`` trees also link into the home ``gcs``
#: span but are NOT on the home critical path — they are profiled as
#: their own roots instead.
_LINK_STITCH_NAMES = frozenset({"staleness_wait"})


@dataclass
class _Rec:
    """Normalized span record (Span object or JSONL dict)."""

    name: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    link: Optional[int]
    start: float
    end: float
    replica: str
    status: str
    attrs: dict
    #: still open at export time (in-flight when the run ended)
    unfinished: bool = False


def _normalize(span: Any) -> Optional[_Rec]:
    if isinstance(span, dict):
        get = span.get
    else:
        get = lambda key, default=None: getattr(span, key, default)  # noqa: E731
    end = get("end")
    start = get("start")
    if start is None:
        return None
    return _Rec(
        name=get("name", ""),
        trace_id=get("trace_id", ""),
        span_id=get("span_id", 0),
        parent_id=get("parent_id"),
        link=get("link"),
        start=float(start),
        # an open span (crash without close) attributes up to its start
        end=float(end) if end is not None else float(start),
        replica=get("replica", "") or "",
        status=get("status", "ok") or "ok",
        attrs=dict(get("attrs") or {}),
        unfinished=end is None,
    )


def _iter_spans(source: Any) -> list[_Rec]:
    """Accept a Tracer, an iterable of Span/dicts, or a JSONL string."""
    if hasattr(source, "spans"):  # Tracer
        raw: Iterable[Any] = list(source.spans()) + list(source.open_spans())
    elif isinstance(source, str):
        raw = [json.loads(line) for line in source.splitlines() if line.strip()]
    else:
        raw = source
    out = []
    for span in raw:
        rec = _normalize(span)
        if rec is not None:
            out.append(rec)
    return out


# ---------------------------------------------------------------- attribution


@dataclass
class TxnProfile:
    """One transaction's critical-path phase attribution."""

    trace_id: str
    kind: str  #: root span name: txn / read_txn / deliver / route / inquiry
    replica: str
    start: float
    end: float
    status: str
    #: phase -> seconds on the critical path (sums to ``total`` exactly)
    phases: dict[str, float]
    #: merged (phase, start, end) segments covering [start, end]
    segments: list[tuple[str, float, float]] = field(default_factory=list)
    #: zero-length markers (certify verdicts etc.): (name, t, status)
    markers: list[tuple[str, float, str]] = field(default_factory=list)
    #: True for update transactions that went through replication
    replicated: bool = False

    @property
    def total(self) -> float:
        return self.end - self.start

    @property
    def attribution_error(self) -> float:
        """Relative |sum(phases) - total| — ~float epsilon by construction."""
        if self.total <= 0.0:
            return 0.0
        return abs(sum(self.phases.values()) - self.total) / self.total

    def to_dict(self) -> dict:
        return sanitize(
            {
                "trace_id": self.trace_id,
                "kind": self.kind,
                "replica": self.replica,
                "start": self.start,
                "end": self.end,
                "status": self.status,
                "total_ms": self.total * 1e3,
                "phases_ms": {
                    phase: seconds * 1e3 for phase, seconds in self.phases.items()
                },
                "replicated": self.replicated,
            }
        )

    def render(self, width: int = 56) -> str:
        """ASCII critical path: one bar segment per attributed phase."""
        lines = [
            f"{self.trace_id}  [{self.kind}@{self.replica}]  "
            f"{self.total * 1e3:.2f} ms  status={self.status}"
        ]
        total = max(self.total, 1e-12)
        for phase, seg_start, seg_end in self.segments:
            seconds = seg_end - seg_start
            bar = max(1, round(width * seconds / total))
            lines.append(
                f"  {phase:<16} {'#' * bar:<{width}} "
                f"{seconds * 1e3:9.3f} ms  (+{(seg_start - self.start) * 1e3:.3f})"
            )
        for name, at, status in self.markers:
            lines.append(
                f"  {name:<16} @ +{(at - self.start) * 1e3:.3f} ms [{status}]"
            )
        return "\n".join(lines)


def _sweep(
    root: _Rec, intervals: list[tuple[str, float, float]]
) -> tuple[dict[str, float], list[tuple[str, float, float]]]:
    """Charge every instant of the root interval to exactly one phase.

    ``intervals`` may overlap arbitrarily (container spans, stitched
    cross-replica waits); priority resolves each elementary segment to
    one phase and uncovered time becomes ``other`` — so the per-phase
    sums reconstruct the end-to-end duration exactly, never double- or
    under-counting.
    """
    lo, hi = root.start, root.end
    phases = {phase: 0.0 for phase in PHASES}
    if hi <= lo:
        return phases, []
    clipped = [
        (phase, max(start, lo), min(end, hi))
        for phase, start, end in intervals
        if min(end, hi) > max(start, lo)
    ]
    points = sorted({lo, hi, *(s for _, s, _ in clipped), *(e for _, _, e in clipped)})
    rank = {phase: index for index, phase in enumerate(_PRIORITY)}
    segments: list[tuple[str, float, float]] = []
    for seg_start, seg_end in zip(points, points[1:]):
        covering = [
            phase
            for phase, start, end in clipped
            if start <= seg_start and end >= seg_end
        ]
        phase = (
            min(covering, key=lambda p: rank.get(p, len(rank)))
            if covering
            else "other"
        )
        phases[phase] += seg_end - seg_start
        if segments and segments[-1][0] == phase and segments[-1][2] == seg_start:
            segments[-1] = (phase, segments[-1][1], seg_end)
        else:
            segments.append((phase, seg_start, seg_end))
    return phases, segments


def profile_spans(source: Any) -> list[TxnProfile]:
    """Build one :class:`TxnProfile` per traced root span.

    Each root ("txn", "read_txn", "deliver", "route", "inquiry") is
    attributed independently over its own interval, so overlapping trees
    of one trace — a home transaction, its remote applies, a failover
    inquiry — never double-count each other.
    """
    records = _iter_spans(source)
    by_id = {rec.span_id: rec for rec in records}
    children: dict[int, list[_Rec]] = {}
    by_link: dict[int, list[_Rec]] = {}
    by_trace: dict[str, list[_Rec]] = {}
    for rec in records:
        if rec.parent_id is not None:
            children.setdefault(rec.parent_id, []).append(rec)
        if rec.link is not None:
            by_link.setdefault(rec.link, []).append(rec)
        by_trace.setdefault(rec.trace_id, []).append(rec)

    def tree_of(root: _Rec) -> list[_Rec]:
        out, stack = [], [root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(children.get(node.span_id, ()))
        return out

    profiles = []
    for rec in records:
        if rec.name not in ROOT_NAMES or rec.parent_id is not None:
            continue
        if rec.unfinished:
            continue  # in-flight at run end: not a completed life

        tree = tree_of(rec)
        # cross-replica waits the client blocked on (link edges)
        for node in list(tree):
            for linked in by_link.get(node.span_id, ()):
                if linked.name in _LINK_STITCH_NAMES:
                    tree.append(linked)
                    tree.extend(tree_of(linked)[1:])
        if rec.name == "route":
            # cross-shard stitching: each routed statement names the
            # branch transaction's gid, whose home tree carries the
            # per-group replication phases — fold those spans into the
            # route interval (the sweep de-overlaps them)
            branch_gids = {
                node.attrs.get("branch_gid")
                for node in tree
                if node.name == "route_statement"
            }
            for gid in branch_gids:
                if not gid:
                    continue
                for branch in by_trace.get(gid, ()):
                    if branch.name in ROOT_NAMES:
                        continue  # the branch root itself is scaffolding
                    tree.append(branch)
        intervals, markers = [], []
        replicated = False
        for node in tree:
            if node is rec:
                continue
            if node.name in ("gcs", "gcs_sequencing", "gcs_fanout", "certify"):
                replicated = True
            phase = NAME_TO_PHASE.get(node.name)
            if phase is None:
                continue
            if node.end <= node.start:
                markers.append((node.name, node.start, node.status))
                continue
            intervals.append((phase, node.start, node.end))
        phases, segments = _sweep(rec, intervals)
        profiles.append(
            TxnProfile(
                trace_id=rec.trace_id,
                kind=rec.name,
                replica=rec.replica,
                start=rec.start,
                end=rec.end,
                status=rec.status,
                phases=phases,
                segments=segments,
                markers=sorted(markers, key=lambda m: m[1]),
                replicated=replicated,
            )
        )
    return profiles


# ----------------------------------------------------------------- aggregation


def _phase_stats(samples: dict[str, list[float]], totals: list[float]) -> dict:
    grand_total = sum(totals) or float("nan")
    out = {}
    for phase in PHASES:
        values = sorted(samples.get(phase, ()))
        if not values:
            continue
        total = sum(values)
        out[phase] = {
            "mean_ms": total / len(values) * 1e3,
            "p50_ms": quantile(values, 0.50) * 1e3,
            "p95_ms": quantile(values, 0.95) * 1e3,
            "fraction": total / grand_total,
        }
    return out


@dataclass
class ProfileReport:
    """Aggregated bottleneck report over one run's transaction profiles."""

    profiles: list[TxnProfile]
    #: gauge time-series rows (the Sampler's ``series()``), optional
    series: Optional[list[dict]] = None
    #: observed committed-update throughput (txn/s), optional
    throughput: Optional[float] = None

    # -- derived ---------------------------------------------------------------

    def updates(self) -> list[TxnProfile]:
        """Committed update transactions (went through replication)."""
        return [
            p
            for p in self.profiles
            if p.kind == "txn" and p.status == "ok" and p.replicated
        ]

    def reads(self) -> list[TxnProfile]:
        return [p for p in self.profiles if p.kind == "read_txn"]

    def slowest(self, n: int = 5, kind: Optional[str] = None) -> list[TxnProfile]:
        pool = [p for p in self.profiles if kind is None or p.kind == kind]
        return sorted(pool, key=lambda p: p.total, reverse=True)[:n]

    def _aggregate(self, pool: Sequence[TxnProfile]) -> dict:
        samples: dict[str, list[float]] = {}
        totals = []
        for profile in pool:
            totals.append(profile.total)
            for phase, seconds in profile.phases.items():
                if seconds > 0.0:
                    samples.setdefault(phase, []).append(seconds)
        ordered_totals = sorted(totals)
        # the p95 tail: which phase dominates the slowest transactions?
        tail_cut = quantile(ordered_totals, 0.95) if totals else float("nan")
        tail = [p for p in pool if p.total >= tail_cut] if totals else []
        tail_phase_sums = {phase: 0.0 for phase in PHASES}
        for profile in tail:
            for phase, seconds in profile.phases.items():
                tail_phase_sums[phase] += seconds
        dominant = (
            max(tail_phase_sums, key=tail_phase_sums.get) if tail else None
        )
        return {
            "n": len(pool),
            "total_ms": {
                "mean": (sum(totals) / len(totals) * 1e3) if totals else None,
                "p50": quantile(ordered_totals, 0.50) * 1e3 if totals else None,
                "p95": tail_cut * 1e3 if totals else None,
            },
            "phases": _phase_stats(samples, totals),
            "tail": {
                "n": len(tail),
                "dominant_phase": dominant,
                "phase_ms": {
                    phase: seconds / len(tail) * 1e3
                    for phase, seconds in tail_phase_sums.items()
                    if tail and seconds > 0.0
                },
            },
            "max_attribution_error": max(
                (p.attribution_error for p in pool), default=0.0
            ),
        }

    def queueing(self) -> dict:
        """Per-replica queueing diagnostics from the sampled gauges.

        Little's law: mean queue depth L should equal arrival rate λ ×
        mean sojourn W.  λ is the observed update throughput (every
        replica enqueues every certified writeset), W the mean
        ``commit_queue`` + ``commit`` residence from the attribution.
        ``littles_ratio`` far from 1 means the sampled depth and the
        attributed sojourn disagree — a red flag on either measurement.
        """
        out: dict[str, Any] = {"replicas": {}}
        if not self.series:
            return out
        sums: dict[str, tuple[float, int]] = {}
        for row in self.series:
            for key, value in row.items():
                if value is None or key == "t":
                    continue
                if key.endswith(".tocommit_depth") or key.endswith(
                    ".cpu_utilization"
                ):
                    total, count = sums.get(key, (0.0, 0))
                    sums[key] = (total + value, count + 1)
        for key, (total, count) in sorted(sums.items()):
            replica, _, gauge = key.rpartition(".")
            out["replicas"].setdefault(replica, {})[f"mean_{gauge}"] = (
                total / count if count else None
            )
        updates = self.updates()
        if updates and self.throughput:
            sojourn = sum(
                p.phases["commit_queue"] + p.phases["commit"] for p in updates
            ) / len(updates)
            implied_depth = self.throughput * sojourn
            out["littles"] = {
                "throughput_tps": self.throughput,
                "mean_sojourn_ms": sojourn * 1e3,
                "implied_depth": implied_depth,
            }
            depths = [
                stats["mean_tocommit_depth"]
                for stats in out["replicas"].values()
                if stats.get("mean_tocommit_depth") is not None
            ]
            if depths and implied_depth > 0.0:
                mean_depth = sum(depths) / len(depths)
                out["littles"]["mean_sampled_depth"] = mean_depth
                out["littles"]["littles_ratio"] = mean_depth / implied_depth
        return out

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        statuses: dict[str, int] = {}
        for profile in self.profiles:
            key = f"{profile.kind}:{profile.status}"
            statuses[key] = statuses.get(key, 0) + 1
        out = {
            "schema": 1,
            "n_profiles": len(self.profiles),
            "statuses": statuses,
            "updates": self._aggregate(self.updates()),
        }
        reads = self.reads()
        if reads:
            out["reads"] = self._aggregate(reads)
        queueing = self.queueing()
        if queueing.get("replicas") or queueing.get("littles"):
            out["queueing"] = queueing
        return sanitize(out)

    def render(self, top: int = 0) -> str:
        """Human-readable phase table (+ the top-N slowest paths)."""
        report = self.to_dict()
        lines = []
        for group in ("updates", "reads"):
            stats = report.get(group)
            if not stats or not stats["n"]:
                continue
            totals = stats["total_ms"]
            lines.append(
                f"{group}: n={stats['n']}  total p50={totals['p50']:.2f} ms "
                f"p95={totals['p95']:.2f} ms  "
                f"tail-dominant={stats['tail']['dominant_phase']}"
            )
            lines.append(
                f"  {'phase':<16} {'mean ms':>9} {'p50 ms':>9} "
                f"{'p95 ms':>9} {'share':>7}"
            )
            for phase in PHASES:
                row = stats["phases"].get(phase)
                if row is None:
                    continue
                lines.append(
                    f"  {phase:<16} {row['mean_ms']:>9.3f} {row['p50_ms']:>9.3f} "
                    f"{row['p95_ms']:>9.3f} {row['fraction']:>6.1%}"
                )
        littles = report.get("queueing", {}).get("littles")
        if littles and littles.get("littles_ratio") is not None:
            lines.append(
                "queueing: L={:.2f} sampled vs λW={:.2f} implied "
                "(ratio {:.2f}, λ={:.1f} tps, W={:.2f} ms)".format(
                    littles["mean_sampled_depth"],
                    littles["implied_depth"],
                    littles["littles_ratio"],
                    littles["throughput_tps"],
                    littles["mean_sojourn_ms"],
                )
            )
        for profile in self.slowest(top):
            lines.append("")
            lines.append(profile.render())
        return "\n".join(lines)


def profile_run(
    source: Any,
    series: Optional[list[dict]] = None,
    throughput: Optional[float] = None,
) -> ProfileReport:
    """One call from tracer (or exported spans) to bottleneck report."""
    return ProfileReport(
        profiles=profile_spans(source), series=series, throughput=throughput
    )


# ------------------------------------------------------------------- compare


def compare_reports(before: dict, after: dict, group: str = "updates") -> dict:
    """Per-phase delta between two report dicts (``--compare``).

    Accepts raw report dicts or BENCH_*.json files' ``profile`` payloads.
    """
    before = before.get("profile", before)
    after = after.get("profile", after)
    rows = {}
    b_phases = before.get(group, {}).get("phases", {})
    a_phases = after.get(group, {}).get("phases", {})
    for phase in PHASES:
        b_row, a_row = b_phases.get(phase), a_phases.get(phase)
        if b_row is None and a_row is None:
            continue
        b_mean = b_row["mean_ms"] if b_row else 0.0
        a_mean = a_row["mean_ms"] if a_row else 0.0
        rows[phase] = {
            "before_ms": b_mean,
            "after_ms": a_mean,
            "delta_ms": a_mean - b_mean,
            "ratio": (a_mean / b_mean) if b_mean else None,
        }
    b_total = before.get(group, {}).get("total_ms", {})
    a_total = after.get(group, {}).get("total_ms", {})
    return sanitize(
        {
            "group": group,
            "total_p95_before_ms": b_total.get("p95"),
            "total_p95_after_ms": a_total.get("p95"),
            "phases": rows,
        }
    )


def _render_compare(delta: dict) -> str:
    lines = [
        "{}: total p95 {} -> {} ms".format(
            delta["group"],
            _fmt(delta["total_p95_before_ms"]),
            _fmt(delta["total_p95_after_ms"]),
        ),
        f"  {'phase':<16} {'before':>9} {'after':>9} {'delta':>9} {'ratio':>7}",
    ]
    for phase, row in delta["phases"].items():
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "new"
        lines.append(
            f"  {phase:<16} {row['before_ms']:>9.3f} {row['after_ms']:>9.3f} "
            f"{row['delta_ms']:>+9.3f} {ratio:>7}"
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    return f"{value:.2f}" if isinstance(value, (int, float)) else "?"


# ----------------------------------------------------------------------- CLI


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description=(
            "Critical-path latency attribution from exported span JSONL "
            "(Tracer.to_jsonl) or saved profile/BENCH_*.json reports."
        ),
    )
    parser.add_argument(
        "spans", nargs="?", default=None,
        help="span JSONL file to profile (one strict-JSON span per line)",
    )
    parser.add_argument(
        "--top", type=int, default=3,
        help="render the N slowest transactions' critical paths",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump the aggregate report as strict JSON",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("BEFORE", "AFTER"), default=None,
        help="diff two saved reports (profile JSON or BENCH_*.json)",
    )
    parser.add_argument(
        "--group", default="updates", choices=["updates", "reads"],
        help="which transaction class --compare diffs",
    )
    args = parser.parse_args(argv)
    if args.compare:
        with open(args.compare[0]) as handle:
            before = json.load(handle)
        with open(args.compare[1]) as handle:
            after = json.load(handle)
        delta = compare_reports(before, after, group=args.group)
        print(_render_compare(delta))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(delta, handle, indent=2, allow_nan=False)
        return 0
    if not args.spans:
        parser.error("give a span JSONL file or --compare BEFORE AFTER")
    with open(args.spans) as handle:
        report = profile_run(handle.read())
    print(report.render(top=args.top))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, allow_nan=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
