"""Figure 6 — large I/O-bound database: update response time vs load for
5 and 10 replicas; §6.2 text claim about the centralized reference.

Shape assertions:
* 5 replicas keep update response times moderate (~<=250 ms) at 20 tps;
* 10 replicas do the same at 35 tps, where 5 replicas have degraded;
* the single-server reference saturates around 4-5 tps.
"""

from repro.bench import figures


def _by(points, system, load):
    return next(p for p in points if p.system == system and p.load_tps == load)


def test_fig6_largedb_scalability(benchmark):
    points = benchmark.pedantic(
        lambda: figures.fig6_largedb(fast=True, quiet=False), rounds=1, iterations=1
    )

    five_mid = _by(points, "5 replicas", 20)
    ten_mid = _by(points, "10 replicas", 20)
    five_hi = _by(points, "5 replicas", 35)
    ten_hi = _by(points, "10 replicas", 35)

    # 5 replicas healthy at 20 tps
    assert five_mid.rt("update") < 260
    assert five_mid.throughput > 0.7 * 20

    # at 35 tps only the 10-replica system stays healthy
    assert ten_hi.rt("update") < 260
    assert ten_hi.throughput > 0.65 * 35
    assert five_hi.rt("update") > ten_hi.rt("update")

    # more replicas = more read capacity (the workload is 80% queries)
    assert ten_hi.throughput > five_hi.throughput


def test_fig6_centralized_saturates_near_4tps(benchmark):
    point = benchmark.pedantic(
        lambda: figures.fig6_centralized_reference(fast=True), rounds=1, iterations=1
    )
    # offered 8 tps; a single I/O-bound server delivers only ~4-6
    assert point.throughput < 6.5
    assert point.rt("update") > 250  # deeply saturated
