"""Point-to-point messaging substrate (client <-> middleware links)."""

from repro.net.network import Channel, ChannelClosed, Host, LatencyModel, Network

__all__ = ["Network", "Host", "Channel", "ChannelClosed", "LatencyModel"]
