"""To-commit queue and group-commit log unit tests."""

import pytest

from repro.core.tocommit import Entry, GroupCommitLog, ToCommitQueue
from repro.core.validation import WsRecord
from repro.sim import Simulator
from repro.storage.writeset import UPDATE, WriteOp, WriteSet


def ws(*keys):
    return WriteSet([WriteOp("t", k, UPDATE, {"k": k}) for k in keys])


def entry(gid, tid, *keys, local=False):
    record = WsRecord(gid, ws(*keys), cert=0)
    record.tid = tid
    return Entry(record, local_txn=object() if local else None)


def test_append_remove_and_len():
    queue = ToCommitQueue()
    e1, e2 = entry("a", 1, 1), entry("b", 2, 2)
    queue.append(e1)
    queue.append(e2)
    assert len(queue) == 2
    assert queue.head() is e1
    queue.remove(e1)
    assert queue.head() is e2
    assert queue.appended_total == 2


def test_extend_counts_entries_not_batches():
    """``appended_total`` is an ENTRY counter: a batch of k adds k (one
    batched delivery must not look like one transaction in dashboards);
    the batch ingestions themselves are counted separately."""
    queue = ToCommitQueue()
    queue.append(entry("a", 1, 1))
    queue.extend([entry("b", 2, 2), entry("c", 3, 3), entry("d", 4, 4)])
    queue.extend([entry("e", 5, 5)])
    assert queue.appended_total == 5
    assert queue.appended_batches == 2
    assert len(queue) == 5
    assert [e.gid for e in queue] == ["a", "b", "c", "d", "e"]


def test_extend_empty_batch_counts_nothing():
    queue = ToCommitQueue()
    queue.extend([])
    assert queue.appended_total == 0
    assert queue.appended_batches == 0
    assert len(queue) == 0


def test_conflicting_predecessor_found_in_order():
    queue = ToCommitQueue()
    e1 = entry("a", 1, 1, 2)
    e2 = entry("b", 2, 3)
    e3 = entry("c", 3, 2, 3)
    for e in (e1, e2, e3):
        queue.append(e)
    assert queue.conflicting_predecessor(e1) is None
    assert queue.conflicting_predecessor(e2) is None
    assert queue.conflicting_predecessor(e3) is e1  # earliest conflict wins


def test_conflicting_predecessor_requires_membership():
    queue = ToCommitQueue()
    with pytest.raises(ValueError):
        queue.conflicting_predecessor(entry("x", 9, 1))


def test_overlaps_for_local_validation():
    queue = ToCommitQueue()
    queue.append(entry("a", 1, 1, 2))
    assert queue.overlaps(ws(2))
    assert not queue.overlaps(ws(5))


def test_entry_properties():
    local = entry("a", 1, 1, local=True)
    remote = entry("b", 2, 2)
    assert local.is_local and not remote.is_local
    assert local.tid == 1
    assert local.gid == "a"
    assert not local.done.is_set


def test_entry_identity_not_field_equality():
    """Entries are identities: two field-identical entries must stay
    distinguishable (the old plain-dataclass equality made ``remove``
    match whichever compared equal first) and hashable for span maps."""
    record = WsRecord("same", ws(1), cert=0)
    record.tid = 7
    e1, e2 = Entry(record), Entry(record)
    assert e1 != e2
    assert len({e1, e2}) == 2  # identity hash, usable as dict keys
    queue = ToCommitQueue()
    queue.append(e1)
    queue.append(e2)
    queue.remove(e2)  # must remove THIS instance, not the equal-looking e1
    assert queue.entries == [e1]
    queue.remove(e1)
    assert len(queue) == 0


def test_remove_requires_membership_and_clears_position():
    queue = ToCommitQueue()
    e1 = entry("a", 1, 1)
    queue.append(e1)
    queue.remove(e1)
    with pytest.raises(ValueError):
        queue.remove(e1)
    with pytest.raises(ValueError):
        queue.blocking_predecessor(e1)
    # a removed entry can be re-queued (new position, fresh bookkeeping)
    queue.append(e1)
    assert queue.head() is e1
    assert queue.conflicting_predecessor(e1) is None


def test_remove_middle_keeps_order_and_index():
    queue = ToCommitQueue()
    e1, e2, e3 = entry("a", 1, 1), entry("b", 2, 1), entry("c", 3, 1)
    for e in (e1, e2, e3):
        queue.append(e)
    queue.remove(e2)
    assert [e.gid for e in queue] == ["a", "c"]
    assert queue.conflicting_predecessor(e3) is e1
    queue.remove(e1)
    assert queue.conflicting_predecessor(e3) is None
    assert queue.overlaps(ws(1))
    queue.remove(e3)
    assert not queue.overlaps(ws(1))


def test_blocking_predecessor_skips_installed_with_pipelining():
    queue = ToCommitQueue()
    e1, e2, e3 = entry("a", 1, 5), entry("b", 2, 5), entry("c", 3, 5)
    for e in (e1, e2, e3):
        queue.append(e)
    assert queue.blocking_predecessor(e3) is e1
    e1.installed = True
    assert queue.blocking_predecessor(e3) is e1  # plain adjustment 2
    assert queue.blocking_predecessor(e3, installed_ok=True) is e2
    e2.installed = True
    assert queue.blocking_predecessor(e3, installed_ok=True) is None


def test_shared_keys_reports_overlap_key_set():
    queue = ToCommitQueue()
    queue.append(entry("a", 1, 1, 2))
    queue.append(entry("b", 2, 2, 3))
    assert sorted(queue.shared_keys(ws(2, 3, 9))) == [("t", 2), ("t", 3)]
    assert queue.shared_keys(ws(9)) == []


# ---------------------------------------------------------- group-commit log


class _FlakyDb:
    """charge_commit stub that fails the first ``fail_times`` flushes."""

    def __init__(self, sim, fail_times=0):
        self.sim = sim
        self.fail_times = fail_times
        self.charged = []

    def charge_commit(self, n_writes):
        yield self.sim.sleep(0.001)  # let concurrent syncs stage
        if self.fail_times > 0:
            self.fail_times -= 1
            raise IOError("disk died")
        self.charged.append(n_writes)


def test_flush_failure_propagates_to_every_waiter():
    """A failed force must surface at each committing entry, not strand
    them on an unresolved OneShot forever."""
    sim = Simulator(seed=1)
    db = _FlakyDb(sim, fail_times=1)
    log = GroupCommitLog(sim, db)
    results = {}

    def committer(name):
        try:
            yield from log.sync(2)
            results[name] = "ok"
        except IOError as err:
            results[name] = str(err)

    sim.spawn(committer("c1"), name="c1")
    sim.spawn(committer("c2"), name="c2")
    sim.run()
    assert results == {"c1": "disk died", "c2": "disk died"}
    assert log.flush_failures == 1
    assert log.flushes == 0
    assert not log._flushing  # the log did not wedge


def test_flush_recovers_after_transient_failure():
    """The group log stays usable: a sync against a healed device starts
    a fresh flush loop and succeeds."""
    sim = Simulator(seed=1)
    db = _FlakyDb(sim, fail_times=1)
    log = GroupCommitLog(sim, db)
    results = []

    def first():
        try:
            yield from log.sync(1)
            results.append("first-ok")
        except IOError:
            results.append("first-failed")

    def second():
        yield sim.sleep(0.01)  # after the failed flush settled
        yield from log.sync(3)
        results.append("second-ok")

    sim.spawn(first(), name="first")
    sim.spawn(second(), name="second")
    sim.run()
    assert results == ["first-failed", "second-ok"]
    assert log.flush_failures == 1
    assert log.flushes == 1
    assert db.charged == [3]
    assert log.mean_group_size == 1.0
