"""A Postgres-R(SI)-style comparator: replication inside the kernel [34].

§6.3: "We tested the system against Postgres-R [34] which provides
kernel-based eager replication.  The results were very similar to
SRCA-Rep since their main difference lies in the validation process while
the principal transaction execution is similar."

This module implements that comparator.  Like SRCA-Rep it executes a
transaction at one replica, multicasts the writeset with total order, and
certifies deterministically in delivery order.  The *kernel* differences:

* there is no middleware layer doing a pre-multicast local validation —
  the commit path of the database itself ships the writeset;
* when a remote writeset meets a row lock held by a local, not-yet-
  certified transaction, the kernel **aborts the local holder
  immediately** instead of waiting for it to reach its own validation
  (the kernel can kill its own backends; a middleware cannot, §4.3.1).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Iterable, Optional

from repro.core import protocol
from repro.core.replica import ReplicaManager, ReplicaNode
from repro.core.tocommit import Entry
from repro.core.validation import Certifier, WsRecord
from repro.gcs import DiscoveryService, GcsConfig, GroupBus, Message, ViewChange
from repro.net import LatencyModel, Network
from repro.net.network import ChannelClosed
from repro.sim import Resource, Simulator
from repro.sim.sync import OneShot
from repro.storage import Database
from repro.storage.engine import CostModel


class _KernelNode:
    """One replicated database process (DB + replication manager)."""

    def __init__(self, system: "KernelReplicatedSystem", index: int):
        self.system = system
        self.sim = system.sim
        self.name = f"KR{index}"
        cpu = Resource(self.sim, f"{self.name}.cpu")
        model: Optional[CostModel] = (
            system.cost_model(index) if system.cost_model else None
        )
        self.db = Database(
            self.sim,
            name=self.name,
            cost_model=model,
            cpu=cpu if model else None,
        )
        self.node = ReplicaNode(self.name, self.db, cpu=cpu)
        self.manager = ReplicaManager(self.sim, self.node, hole_sync=True)
        self.certifier = Certifier()
        self.member = system.bus.join(self.name)
        self.host = system.network.register(self.name)
        system.discovery.register(self.host.address)
        self._pending: dict[str, tuple[Any, OneShot]] = {}
        self._gids = itertools.count(1)
        self.sim.spawn(self._deliver_loop(), name=f"{self.name}.deliver", daemon=True)
        self.sim.spawn(self._accept_loop(), name=f"{self.name}.accept", daemon=True)
        self.local_aborts_by_remote = 0

    # ----------------------------------------------------------- replication

    def _deliver_loop(self) -> Generator[Any, Any, None]:
        while True:
            item = yield self.member.deliver()
            if isinstance(item, ViewChange):
                continue
            assert isinstance(item, Message)
            _kind, gid, writeset, cert, sender = item.payload
            record = WsRecord(gid, writeset, cert=cert, sender=sender)
            ok = self.certifier.validate(record)
            local = self._pending.pop(gid, None)
            if not ok:
                if local is not None:
                    local[1].resolve((protocol.ABORTED, None))
                continue
            # kernel privilege: kill local uncertified writers in the way
            self._abort_conflicting_local_holders(record)
            local_txn = local[0] if local is not None else None
            entry = Entry(record, local_txn=local_txn)
            self.manager.enqueue(entry)
            if local is not None:
                local[1].resolve((protocol.COMMITTED, entry))

    def _abort_conflicting_local_holders(self, record: WsRecord) -> None:
        for key in record.writeset.keys:
            holder = self.db.locks.holder(key)
            if holder is None or not getattr(holder, "active", False):
                continue
            if holder.gid == record.gid:
                continue  # the certified transaction's own locks
            if holder.remote:
                continue  # another certified writeset: ordered via queue
            if holder.gid in self._pending:
                continue  # already multicast: its own validation decides
            self.db.abort(holder)
            self.local_aborts_by_remote += 1

    # ------------------------------------------------------------ client side

    def _accept_loop(self) -> Generator[Any, Any, None]:
        while True:
            chan = yield self.host.accept()
            self.sim.spawn(
                self._session(chan), name=f"{self.name}.session", daemon=True
            )

    def _session(self, chan) -> Generator[Any, Any, None]:
        txn = None
        while True:
            try:
                request = yield from chan.recv()
            except ChannelClosed:
                if txn is not None and txn.active:
                    self.db.abort(txn)
                return
            try:
                if isinstance(request, protocol.ExecuteReq):
                    if txn is not None and not txn.active:
                        # killed by a conflicting replicated writeset
                        # between client statements: surface it once
                        txn = None
                        from repro.errors import TransactionAborted

                        raise TransactionAborted(
                            "transaction aborted by a conflicting "
                            "replicated writeset"
                        )
                    if txn is None:
                        yield from self.manager.wait_local_start()
                        txn = self.db.begin(gid=f"{self.name}:g{next(self._gids)}")
                    result = yield from self.db.execute(
                        txn, request.sql, request.params
                    )
                    chan.send(
                        protocol.ExecuteResp(
                            request.seq, ok=True, gid=txn.gid,
                            rows=result.rows, columns=result.columns,
                            rowcount=result.rowcount,
                        )
                    )
                elif isinstance(request, protocol.CommitReq):
                    response = yield from self._commit(request, txn)
                    txn = None
                    chan.send(response)
                elif isinstance(request, protocol.RollbackReq):
                    if txn is not None and txn.active:
                        self.db.abort(txn)
                    txn = None
                    chan.send(protocol.RollbackResp(request.seq))
            except Exception as err:  # noqa: BLE001
                if txn is not None and txn.active:
                    self.db.abort(txn)
                txn = None
                info = protocol.marshal_error(err)
                if isinstance(request, protocol.ExecuteReq):
                    chan.send(protocol.ExecuteResp(request.seq, ok=False, error=info))
                else:
                    chan.send(
                        protocol.CommitResp(request.seq, protocol.ABORTED, error=info)
                    )

    def _commit(self, request, txn) -> Generator[Any, Any, Any]:
        if txn is None or not txn.active:
            return protocol.CommitResp(request.seq, protocol.COMMITTED)
        writeset = self.db.get_writeset(txn)
        if not writeset:
            yield from self.db.commit(txn)
            return protocol.CommitResp(request.seq, protocol.COMMITTED)
        # no middleware-level local validation: the kernel multicasts
        # straight away and relies on delivery-order certification
        cert = self.certifier.last_validated_tid
        waiter = OneShot()
        self._pending[txn.gid] = (txn, waiter)
        self.member.multicast(("ws", txn.gid, writeset, cert, self.name))
        outcome, entry = yield waiter.wait()
        if outcome == protocol.ABORTED or not txn.active:
            # certification failed — or a remote writeset killed us while
            # our own was in flight
            if txn.active:
                self.db.abort(txn)
            return protocol.CommitResp(
                request.seq, protocol.ABORTED,
                error=("CertificationAborted", "kernel certification failed"),
            )
        yield entry.done.wait()
        return protocol.CommitResp(request.seq, protocol.COMMITTED, replicated=True)


class KernelReplicatedSystem:
    """A Postgres-R(SI)-style cluster, driver-compatible."""

    def __init__(
        self,
        n_replicas: int = 5,
        seed: int = 0,
        gcs: Optional[GcsConfig] = None,
        cost_model=None,
    ):
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, latency=LatencyModel(rng=self.sim.rng("net")))
        self.bus = GroupBus(self.sim, config=gcs or GcsConfig())
        self.discovery = DiscoveryService(self.sim)
        self.cost_model = cost_model
        self._client_count = 0
        self.nodes = [_KernelNode(self, i) for i in range(n_replicas)]

    def load_schema(self, ddl_statements: Iterable[str]) -> None:
        for sql in ddl_statements:
            for node in self.nodes:
                node.db.run_ddl(sql)

    def bulk_load(self, table: str, rows: list[dict]) -> None:
        for node in self.nodes:
            node.db.bulk_load(table, rows)

    def new_client_host(self, name: Optional[str] = None):
        self._client_count += 1
        return self.network.register(name or f"kr-client-{self._client_count}")
