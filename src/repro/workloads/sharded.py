"""A fully partitioned variant of the §6.3 micro workload.

The update-intensive workload of Fig. 7, reshaped for a sharded
deployment: each replication group owns ``tables_per_group`` tables
(explicit placement), and every **update** transaction picks one group
and touches only that group's tables — so update certification load
splits cleanly across groups and aggregate update capacity should scale
near-linearly with the group count.

An optional fraction of **cross-shard read-only** transactions reads one
row from one table of *every* group through the router's scatter-gather
path, exercising the snapshot-vector machinery under load.
"""

from __future__ import annotations

from repro.workloads.spec import TxnTemplate, Workload

ROWS_PER_TABLE = 200
TABLES_PER_TXN = 3
UPDATES_PER_TXN = 10


def table_name(group: int, index: int) -> str:
    return f"part{group}_{index}"


def make_table_map(n_groups: int, tables_per_group: int = 4) -> dict[str, int]:
    """The explicit placement: group ``g`` owns ``part{g}_*``."""
    return {
        table_name(group, index): group
        for group in range(n_groups)
        for index in range(tables_per_group)
    }


def make_partitioned_workload(
    n_groups: int,
    tables_per_group: int = 4,
    rows_per_table: int = ROWS_PER_TABLE,
    readonly_fraction: float = 0.0,
) -> Workload:
    """Build the workload (pair it with ``make_table_map`` for placement)."""
    if tables_per_group < TABLES_PER_TXN:
        raise ValueError(
            f"need at least {TABLES_PER_TXN} tables per group, "
            f"got {tables_per_group}"
        )
    names = [
        table_name(group, index)
        for group in range(n_groups)
        for index in range(tables_per_group)
    ]
    ddl = [f"CREATE TABLE {name} (k INT PRIMARY KEY, v INT)" for name in names]
    tables = {
        name: [{"k": k, "v": 0} for k in range(1, rows_per_table + 1)]
        for name in names
    }

    def _update_params(rng):
        group = rng.randrange(n_groups)
        chosen = rng.sample(range(tables_per_group), TABLES_PER_TXN)
        picks = []
        seen = set()
        while len(picks) < UPDATES_PER_TXN:
            index = rng.choice(chosen)
            key = rng.randint(1, rows_per_table)
            if (index, key) in seen:
                continue
            seen.add((index, key))
            picks.append((index, key, rng.randint(0, 10_000)))
        return (group, tuple(sorted(chosen)), tuple(picks))

    def _update_stmts(params):
        group, _chosen, picks = params
        return [
            (
                f"UPDATE {table_name(group, index)} SET v = ? WHERE k = ?",
                (value, key),
            )
            for (index, key, value) in picks
        ]

    update = TxnTemplate(
        "partitioned_update",
        tuple(names),
        _update_params,
        _update_stmts,
        lock_tables=lambda params: tuple(
            table_name(params[0], index) for index in params[1]
        ),
    )
    mix = [(update, 1.0 - readonly_fraction)]

    if readonly_fraction > 0.0:

        def _ro_params(rng):
            return (
                tuple(rng.randrange(tables_per_group) for _g in range(n_groups)),
                rng.randint(1, rows_per_table),
            )

        def _ro_stmts(params):
            indices, key = params
            return [
                (
                    f"SELECT v FROM {table_name(group, index)} WHERE k = ?",
                    (key,),
                )
                for group, index in enumerate(indices)
            ]

        cross_read = TxnTemplate(
            "cross_shard_read",
            tuple(names),
            _ro_params,
            _ro_stmts,
            readonly=True,
        )
        mix.append((cross_read, readonly_fraction))

    return Workload(
        name=f"partitioned-micro-x{n_groups}",
        ddl=ddl,
        tables=tables,
        mix=mix,
    )
