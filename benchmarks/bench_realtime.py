"""Honest wall-clock numbers: the protocol on real sockets and timers.

Every other bench in the suite measures *virtual* seconds on the
discrete-event kernel — deterministic, machine-independent, and by
construction unable to lie about scheduling.  This bench runs the same
protocol, byte for byte, on :class:`repro.runtime.AsyncioRuntime`: real
``loop.call_later`` timers, real TCP frames between clients, replicas
and the GCS sequencer, real ``os.fsync`` behind the durable writeset
log.  The numbers are genuine elapsed time on whatever machine runs
them, so:

* the envelope carries ``runtime: "wall"`` and the suite refuses to
  band-compare it against any sim baseline (``runtime_mismatch``);
* it is excluded from the default deterministic sweep
  (:data:`repro.bench.suite.WALL_BENCHES`) and runs in its own CI lane
  with very wide tolerance bands;
* the assertions defend liveness (non-zero committed update
  throughput, bounded aborts), never a latency trajectory.
"""

import json
import tempfile

from repro.bench.harness import run_sirep
from repro.gcs import GcsConfig
from repro.workloads.micro import make_workload

N_REPLICAS = 3
OFFERED_TPS = 120.0
N_CLIENTS = 6


def _update_tps(point) -> float:
    commits = point.extras["commits"]
    total = sum(commits.values())
    if not total:
        return 0.0
    return point.throughput * commits.get("update", 0) / total


def run_wall_point(duration: float, warmup: float, seed: int = 0):
    """One measured point on the wall-clock runtime.

    ``duration``/``warmup`` are REAL seconds here.  The durable log
    writes to a throwaway directory with ``fsync`` forced on (the
    cluster does that itself whenever clock == wall and a log dir is
    set), so the commit path pays for genuine durability.
    """
    with tempfile.TemporaryDirectory(prefix="bench-realtime-") as tmp:
        from repro.durable.store import DurabilityConfig

        return run_sirep(
            make_workload(),
            OFFERED_TPS,
            n_replicas=N_REPLICAS,
            gcs=GcsConfig(batch_max_messages=4, batch_window=0.002),
            duration=duration,
            warmup=warmup,
            seed=seed,
            label="wall",
            n_clients=N_CLIENTS,
            runtime="wall",
            durability=DurabilityConfig(log_dir=tmp),
        )


def canonical_point(quick: bool = True) -> dict:
    """Wall-clock anchor for the unified suite runner."""
    duration, warmup = (3.0, 0.5) if quick else (8.0, 1.5)
    point = run_wall_point(duration, warmup)
    update_tps = _update_tps(point)
    payload = {
        "config": {
            "offered_tps": OFFERED_TPS,
            "n_replicas": N_REPLICAS,
            "n_clients": N_CLIENTS,
            "duration": duration,
            "warmup": warmup,
            "seed": 0,
        },
        "runtime": "wall",
        "metrics": {
            "throughput_tps": point.throughput,
            "update_tps": update_tps,
            "update_p50_ms": point.extras["p50_ms"].get("update"),
            "update_p95_ms": point.extras["p95_ms"].get("update"),
            "abort_rate": point.abort_rate,
        },
    }
    # liveness is the contract: a wall run that commits nothing is a
    # broken runtime, not a slow machine
    assert update_tps > 0.0, "wall-clock run committed no updates"
    return payload


if __name__ == "__main__":
    import sys

    print(json.dumps(canonical_point(quick="--full" not in sys.argv), indent=2))
