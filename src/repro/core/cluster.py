"""Full-system assembly: replicas + middleware + GCS + network + clients.

:class:`SIRepCluster` wires everything Fig. 3(c) shows: one middleware
replica per database replica, a group communication bus between them, a
discovery service, and a LAN for JDBC clients.  It also provides crash
injection and the recorded-schedule 1-copy-SI audit used by tests and the
consistency example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.core.replica import ReplicaNode
from repro.core.srca_rep import MiddlewareReplica
from repro.durable.store import DurabilityConfig, DurabilityStore
from repro.durable.watermark import StabilityTracker
from repro.gcs import DiscoveryService, GcsConfig, GroupBus
from repro.net import LatencyModel, Network
from repro.obs import (
    FlightRecorder,
    Observability,
    OneCopyMonitor,
    Tracer,
    sanitize,
)
from repro.reader import CertifiedFeed, ReaderConfig, ReadReplica
from repro.si import check_one_copy_si, recorded_schedules
from repro.si.onecopy import OneCopyReport
from repro.si.schedule import BEGIN, COMMIT, Schedule, TxnSpec
from repro.sim import Resource, Simulator
from repro.storage import Database
from repro.storage.engine import CostModel


@dataclass
class ClusterConfig:
    """Shape of one simulated SI-Rep deployment."""

    n_replicas: int = 3
    #: True = SRCA-Rep (1-copy-SI); False = SRCA-Opt (adjustments 1+2)
    hole_sync: bool = True
    #: amortise the commit-time fsync-equivalent over runs of entries
    #: committing together at a replica (see GroupCommitLog)
    group_commit: bool = False
    #: SCAR-style abort salvage: refresh a would-abort writeset's cert
    #: when every conflicting key was written blindly (never read) and
    #: its dependent readset is unchanged — first-committer-wins stays in
    #: force for read-modify-write keys.  Opt-in; all replicas share it.
    salvage: bool = False
    #: backpressure bound for salvage's blind-write deferral: while the
    #: local to-commit queue is at most this deep, blind first-updater
    #: conflicts defer to certification (where salvage re-homes them);
    #: past it the replica sheds load the classic way — eager aborts —
    #: so commit latency stays bounded under overload
    salvage_defer_depth: int = 16
    #: group-commit pipelining: a conflicting successor starts applying
    #: once its predecessor's versions are installed, while the
    #: predecessor's durability force is still batched in the group log
    #: (the client ack always waits for the force).  ``None`` follows
    #: ``salvage``: deferral keeps conflicting entries alive in the
    #: queue, where chained installs would otherwise pay one full force
    #: per link.
    commit_pipeline: Optional[bool] = None
    seed: int = 0
    gcs: GcsConfig = field(default_factory=GcsConfig)
    net_base_latency: float = 0.0002
    net_jitter: float = 0.0001
    #: replica index -> CostModel (None = zero-cost, pure correctness).
    #: This per-replica-index signature is the CANONICAL cost-model factory
    #: shape (heterogeneous replicas are expressible); the bench harness
    #: also accepts a zero-arg factory and adapts it via
    #: :func:`repro.bench.harness.per_replica_cost`.
    cost_model: Optional[Callable[[int], CostModel]] = None
    #: create a disk resource per replica (I/O-bound workloads, Fig. 6)
    with_disk: bool = False
    cpu_servers: int = 1
    #: attach a TraceLog recording per-transaction commit milestones
    trace: bool = False
    #: attach the repro.obs surface: metrics registry + per-replica gauge
    #: sampler + protocol event log (monitoring never perturbs the sim)
    obs: bool = False
    #: sampler cadence in simulated seconds (only meaningful with obs)
    sampler_interval: float = 0.25
    #: attach a causal span Tracer (repro.obs.trace): every transaction
    #: yields a span tree across replicas, exportable as JSONL or Chrome
    #: trace-event JSON.  Read-only instrumentation — a traced run is
    #: event-for-event identical to an untraced one.
    span_trace: bool = False
    #: run the online 1-copy-SI monitor (repro.obs.monitor): a weak-timer
    #: daemon streaming the Def. 3 conflict-graph check over the live
    #: commit/begin histories, flagging violations at the sim time they
    #: become observable
    monitor: bool = False
    #: monitor poll cadence in simulated seconds
    monitor_interval: float = 0.05
    #: attach a crash flight recorder (repro.obs.flight): a bounded ring
    #: of recent spans/events snapshotted on crash, failed audit, or
    #: monitor violation
    flight: bool = False
    #: directory flight-recorder snapshots are dumped to (None = keep
    #: in memory only, retrievable via ``cluster.flight.snapshots``)
    flight_dir: Optional[str] = None
    #: §8 load balancing: per-replica session cap (None = unbounded);
    #: a replica at its cap declines discovery until a session closes
    max_sessions: Optional[int] = None
    #: replica names are ``f"{replica_prefix}{index}"``; a sharded
    #: deployment gives each group a distinct prefix (e.g. ``"G1-R"``) so
    #: hosts, GCS members, and gids stay unique on a shared network.
    #: Must not contain ``"."`` or ``":"`` (reserved by the gid format).
    replica_prefix: str = "R"
    #: attach the durability subsystem (repro.durable): per-replica
    #: writeset logs + checkpoints, the cluster stability watermark, and
    #: delta catch-up recovery as the default recovery mode
    durable: bool = False
    #: durability knobs (implies ``durable`` when set): log dir,
    #: checkpoint interval, truncation policy, flush costs
    durability: Optional[DurabilityConfig] = None
    #: read-scaling tier (repro.reader): lazy read-only replicas created
    #: at bootstrap, named ``f"{replica_prefix}r{i}"`` — subscribed to
    #: the certified feed, never group members
    read_replicas: int = 0
    #: read-tier knobs: staleness bound, fan-out delay, routing policy,
    #: admission caps (None = defaults)
    reader: Optional[ReaderConfig] = None
    #: execution backend: ``"sim"`` (discrete-event simulator, virtual
    #: time) or ``"wall"`` (AsyncioRuntime: real timers, TCP sockets for
    #: client and GCS traffic, fsync-backed durable logs).  See
    #: :mod:`repro.runtime.api`.
    runtime: str = "sim"


class SIRepCluster:
    """A running SI-Rep deployment inside one simulator.

    By default the cluster owns its whole world: it creates the
    simulator, the LAN, the GCS bus, and the discovery service.  A
    sharded deployment (:class:`repro.shard.ShardedCluster`) instead
    passes ``sim``/``network`` (shared: one clock, one LAN) and
    per-group ``bus``/``discovery`` instances, so several replication
    groups coexist in one simulation.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        bus: Optional[GroupBus] = None,
        discovery: Optional[DiscoveryService] = None,
        obs: Optional[Observability] = None,
        tracer: Optional[Tracer] = None,
        flight: Optional[FlightRecorder] = None,
        durability: Optional[DurabilityStore] = None,
        cold_start: bool = False,
    ):
        self.config = config or ClusterConfig()
        cfg = self.config
        if "." in cfg.replica_prefix or ":" in cfg.replica_prefix:
            raise ValueError(
                f"replica_prefix {cfg.replica_prefix!r} may not contain '.' or ':'"
            )
        if cfg.runtime not in ("sim", "wall"):
            raise ValueError(f"unknown runtime {cfg.runtime!r} ('sim' or 'wall')")
        self._owns_runtime = sim is None
        if sim is not None:
            self.sim = sim
        else:
            from repro.runtime.api import make_runtime

            self.sim = make_runtime(cfg.runtime, seed=cfg.seed)
        #: which clock this deployment runs on ("sim" | "wall"); tags
        #: metrics and bench envelopes so the two are never conflated
        self.clock = getattr(self.sim, "clock", "sim")
        if self.clock == "wall":
            from repro.runtime import TcpGroupBus, TcpNetwork

            self.network = network if network is not None else TcpNetwork(self.sim)
            self.bus = bus if bus is not None else TcpGroupBus(
                self.sim, config=cfg.gcs, network=self.network
            )
        else:
            self.network = network if network is not None else Network(
                self.sim,
                latency=LatencyModel(
                    base=cfg.net_base_latency,
                    jitter=cfg.net_jitter,
                    rng=self.sim.rng("net"),
                ),
            )
            self.bus = bus if bus is not None else GroupBus(self.sim, config=cfg.gcs)
        #: adaptive batch windows: point the bus at this cluster's
        #: contention estimate unless a sharded deployment wired its own
        self._signal_prev = (0, 0)
        self._signal_ema = 0.0
        if cfg.gcs.adaptive_window and self.bus.contention_signal is None:
            self.bus.contention_signal = self.contention_signal
        self.discovery = (
            discovery if discovery is not None else DiscoveryService(self.sim)
        )
        #: durable state shared across incarnations; pass an external
        #: DurabilityStore to make it outlive the cluster (cold restart)
        durability_cfg = cfg.durability
        if (
            self.clock == "wall"
            and durability_cfg is not None
            and durability_cfg.log_dir is not None
            and not durability_cfg.fsync
        ):
            # on real hardware a disk-backed log pays for its durability
            from dataclasses import replace as _dc_replace

            durability_cfg = _dc_replace(durability_cfg, fsync=True)
        self.durable_store = durability if durability is not None else (
            DurabilityStore(durability_cfg)
            if (cfg.durable or durability_cfg is not None)
            else None
        )
        self._cold_start = cold_start
        self.stability: Optional[StabilityTracker] = None
        if self.durable_store is not None:
            self.stability = StabilityTracker(self.durable_store.config.truncation)
            self.bus.stability = self.stability
        #: shared in a sharded deployment (one registry/sampler/event log
        #: across the groups), otherwise owned by this cluster when
        #: ``config.obs`` asks for it
        self.obs = obs if obs is not None else (
            Observability(self.sim, sampler_interval=cfg.sampler_interval)
            if cfg.obs
            else None
        )
        #: a shared (sharded) Observability is snapshotted by its owner,
        #: not duplicated into every group's metrics()
        self._owns_obs = obs is None and self.obs is not None
        from repro.core.tracing import TraceLog

        # the trace aggregates onto the shared registry when one exists,
        # so breakdown histograms appear next to the sampler gauges
        self.trace = (
            TraceLog(registry=self.obs.registry if self.obs else None)
            if cfg.trace
            else None
        )
        if self.obs is not None:
            self._register_bus_gauges()
        #: shared across groups in a sharded deployment (one trace store,
        #: so cross-shard router hops stitch into one trace), otherwise
        #: owned here when ``config.span_trace`` asks for it
        self.tracer = tracer if tracer is not None else (
            Tracer(self.sim) if cfg.span_trace else None
        )
        self._owns_tracer = tracer is None and self.tracer is not None
        self.monitor = (
            OneCopyMonitor(
                self.sim,
                interval=cfg.monitor_interval,
                obs=self.obs,
                on_violation=self._on_monitor_violation,
            )
            if cfg.monitor
            else None
        )
        if self.monitor is not None:
            self.monitor.start()
        self.flight = flight if flight is not None else (
            FlightRecorder(
                self.sim,
                tracer=self.tracer,
                events=self.obs.events if self.obs is not None else None,
                directory=cfg.flight_dir,
            )
            if cfg.flight
            else None
        )
        self._owns_flight = flight is None and self.flight is not None
        self.nodes: list[ReplicaNode] = []
        self.replicas: list[MiddlewareReplica] = []
        self._client_count = 0
        self._schema_ddl: list[str] = []
        self._incarnations: dict[str, int] = {}
        self._recovered: set[str] = set()
        #: read tier: the certified-stream fan-out and the lazy replicas.
        #: The feed always exists (publishing with no subscribers is a
        #: pure bookkeeping no-op — it schedules nothing, so a run
        #: without readers is event-identical to one predating the tier)
        self.reader_config = cfg.reader or ReaderConfig()
        self.feed = CertifiedFeed(
            self.sim, fanout_delay=self.reader_config.fanout_delay
        )
        self.readers: list[ReadReplica] = []
        for index in range(cfg.n_replicas):
            self._add_replica(index)
        for index in range(cfg.read_replicas):
            self._add_reader(index)

    def _spawn_replica(
        self,
        index: int,
        name: str,
        incarnation: int = 0,
        recover_from: Optional[str] = None,
        mode: Optional[str] = None,
    ) -> tuple[ReplicaNode, MiddlewareReplica]:
        """Build one middleware/DB pair (fresh, recovering, or joining)."""
        cfg = self.config
        suffix = "" if incarnation == 0 else f"#{incarnation}"
        cpu = Resource(self.sim, f"{name}.cpu{suffix}", servers=cfg.cpu_servers)
        disk = (
            Resource(self.sim, f"{name}.disk{suffix}") if cfg.with_disk else None
        )
        cost_model = cfg.cost_model(index) if cfg.cost_model else None
        db = Database(
            self.sim,
            name=name,
            conflict_detection="locking",
            cost_model=cost_model,
            cpu=cpu if cost_model else None,
            disk=disk,
        )
        # salvage owns the fate of blind write-write conflicts: let them
        # reach certification instead of dying at the eager version check
        db.defer_blind_ww = cfg.salvage
        node = ReplicaNode(name=name, db=db, cpu=cpu, disk=disk)
        member = self.bus.join(name)
        # The network address IS the replica name, so view changes and
        # driver-side crash observations speak about the same identifier.
        host = self.network.register(name)
        durable = (
            self.durable_store.replica(name)
            if self.durable_store is not None
            else None
        )
        replica = MiddlewareReplica(
            self.sim,
            name=name,
            node=node,
            member=member,
            host=host,
            hole_sync=cfg.hole_sync,
            group_commit=cfg.group_commit,
            discovery=self.discovery,
            incarnation=incarnation,
            recover_from=recover_from,
            max_sessions=cfg.max_sessions,
            obs=self.obs,
            durable=durable,
            recovery_mode=mode or ("delta" if durable is not None else "full"),
            cold_start=self._cold_start and recover_from is None,
            on_recovered=self._on_replica_recovered,
            feed=self.feed,
            salvage=cfg.salvage,
        )
        replica.trace = self.trace
        replica.tracer = self.tracer
        replica.manager.tracer = self.tracer
        replica.manager.commit_pipeline = (
            cfg.commit_pipeline
            if cfg.commit_pipeline is not None
            else cfg.salvage
        )
        if cfg.salvage:
            # deferral stays open only while the to-commit queue is
            # shallow; past the cap the engine's eager aborts shed load
            db.defer_gate = (
                lambda queue=replica.manager.queue,
                cap=cfg.salvage_defer_depth: len(queue) <= cap
            )
        return node, replica

    def _add_replica(self, index: int) -> None:
        name = f"{self.config.replica_prefix}{index}"
        node, replica = self._spawn_replica(index, name)
        self.nodes.append(node)
        self.replicas.append(replica)
        self._register_replica_gauges(replica)
        if self.stability is not None and replica.wslog is not None:
            self.stability.register(name, replica.wslog.durable_seq)
        # cold restart defers watching until catch-up leveling is done
        # (see cold_restart); the covered set is only complete then
        if self.monitor is not None and not self._cold_start:
            self.monitor.watch(name, node.db)

    # --------------------------------------------------------------- read tier

    def _spawn_reader(self, index: int, name: str, from_seq: int = 0) -> ReadReplica:
        """Build one lazy read replica: its own engine + cpu + host, a
        feed subscription — but no group membership or durable log."""
        cfg = self.config
        cpu = Resource(self.sim, f"{name}.cpu", servers=cfg.cpu_servers)
        # readers index the cost-model factory after the voting replicas
        # (heterogeneous tiers stay expressible; zero-arg adapters ignore it)
        cost_model = (
            cfg.cost_model(cfg.n_replicas + index) if cfg.cost_model else None
        )
        db = Database(
            self.sim,
            name=name,
            conflict_detection="locking",
            cost_model=cost_model,
            cpu=cpu if cost_model else None,
        )
        node = ReplicaNode(name=name, db=db, cpu=cpu, disk=None)
        host = self.network.register(name)
        return ReadReplica(
            self.sim,
            name=name,
            node=node,
            host=host,
            feed=self.feed,
            config=self.reader_config,
            discovery=self.discovery,
            obs=self.obs,
            from_seq=from_seq,
            tracer=self.tracer,
        )

    def _add_reader(self, index: int) -> ReadReplica:
        name = f"{self.config.replica_prefix}r{index}"
        reader = self._spawn_reader(index, name)
        self.readers.append(reader)
        self._register_reader_gauges(reader)
        # cold restart watches after leveling, once the covered set is known
        if self.monitor is not None and not self._cold_start:
            self._watch_reader(reader)
        return reader

    def _watch_reader(self, reader: ReadReplica) -> None:
        """Admit a reader to the online monitor: its bootstrap prefix is
        covered, and its advertised staleness promise (if any) becomes a
        per-watch lost-writeset grace."""
        self.monitor.watch(
            reader.name,
            reader.db,
            covered=frozenset(reader.covered_gids),
            grace=self.reader_config.staleness_grace,
        )

    def add_reader(self, donor_index: Optional[int] = None) -> ReadReplica:
        """Elastic read-tier join while traffic continues.

        The donor is captured atomically (no yields): with durability
        on, the reader replays the donor's writeset log — real
        replayable transactions, so the join stays inside the Def. 3
        audit; without it, the donor's committed row images plus its
        pending certified writesets (row images are not replayable, so
        that incarnation is excluded from the offline audit, like a
        full-state-recovered replica).  The feed subscription starts at
        the donor's feed position; anything newer is backfilled or fans
        out normally, so no certified item is missed or applied twice.
        """
        index = len(self.readers)
        if donor_index is None:
            donor_index = self._pick_donor(exclude=-1)
        donor = self.replicas[donor_index]
        if not donor.alive:
            raise ValueError(f"donor replica {donor_index} is not alive")
        name = f"{self.config.replica_prefix}r{index}"
        reader = self._spawn_reader(index, name, from_seq=donor.feed_seq)
        if donor.wslog is not None and donor.wslog.can_serve_from(0):
            reader.bootstrap_replay(donor.wslog.records_after(0))
        else:
            from repro.core import protocol as _protocol

            reader.bootstrap_snapshot(
                ddl=tuple(donor.ddl_log),
                rows=donor.db.export_committed(),
                csn=donor.db.csn,
                pending=tuple(entry.record for entry in donor.manager.queue),
                cert_tid=donor.certifier.last_validated_tid,
                committed_gids=[
                    gid for gid, outcome in donor.outcomes.items()
                    if outcome == _protocol.COMMITTED
                ],
            )
        self.readers.append(reader)
        self._register_reader_gauges(reader)
        if self.monitor is not None:
            self._watch_reader(reader)
        if self.flight is not None:
            self.flight.snapshot(
                f"reader-joined:{name}", replica=name,
                watermark=reader.watermark, feed_pos=reader.feed_pos,
            )
        return reader

    def _teardown_reader(self, reader: ReadReplica) -> None:
        self.discovery.unregister(reader.host.address)
        reader.crash()
        self.network.crash(reader.host.address)
        if self.monitor is not None:
            # a departed reader's missing suffix is legitimate — keep
            # auditing it and every certified update would eventually be
            # flagged lost
            self.monitor.unwatch(reader.name)
        if self.obs is not None:
            # same hygiene as a crashed full replica: no stale
            # ``R*.reader.*`` gauges probing the corpse
            self.obs.registry.unregister_prefix(f"{reader.name}.")

    def crash_reader(self, index: int) -> None:
        """Take down a lazy replica abruptly (fault injection)."""
        reader = self.readers[index]
        if not reader.alive:
            return
        self._teardown_reader(reader)
        if self.flight is not None:
            self.flight.snapshot(
                f"crash:{reader.name}", replica=reader.name, index=index
            )

    def remove_reader(self, index: int) -> None:
        """Decommission a lazy replica gracefully (scale-down): same
        teardown as a crash — readers hold no replicated state that
        needs handing off — minus the flight-recorder post-mortem."""
        reader = self.readers[index]
        if not reader.alive:
            return
        self._teardown_reader(reader)

    def alive_readers(self) -> list[ReadReplica]:
        return [r for r in self.readers if r.alive]

    def _register_reader_gauges(self, reader: ReadReplica) -> None:
        if self.obs is None:
            return
        registry = self.obs.registry
        name = reader.name
        registry.gauge(f"{name}.reader.watermark", lambda: reader.watermark)
        registry.gauge(f"{name}.reader.lag", lambda: reader.lag)
        registry.gauge(f"{name}.reader.staleness_s", lambda: reader.staleness_s)
        registry.gauge(f"{name}.reader.queue_depth", lambda: len(reader.inbox))
        registry.gauge(
            f"{name}.reader.active_sessions", lambda: reader.active_sessions
        )

    # --------------------------------------------------------------- observability

    def _on_monitor_violation(self, violation) -> None:
        """Snapshot the flight recorder the moment the monitor trips —
        the post-mortem then covers the window *around* the violation,
        not whatever remains at the end of the run."""
        if self.flight is not None:
            self.flight.snapshot(
                f"monitor:{violation.kind}", violation=violation.to_dict()
            )

    def contention_signal(self) -> float:
        """0..1 contention estimate feeding the adaptive batch window.

        Combines an EMA of the certification abort fraction (delta since
        the last sample, so the signal tracks the present, not the whole
        run) with the age of the oldest hole across replicas: either one
        saturating means the cluster is paying for conflicts and the bus
        should hold batches open longer for the reorder/salvage machinery.
        Hole AGE, not count: a couple of in-flight holes is the normal
        pipeline state at any instant, but a hole outliving several batch
        windows is a commit stalled behind conflicts.
        """
        certifier = next(
            (r.certifier for r in self.replicas if r.alive), None
        )
        if certifier is None:
            return self._signal_ema
        decisions, rejects = certifier.decisions, certifier.rejected
        prev_decisions, prev_rejects = self._signal_prev
        # recovery can swap in a certifier with reset counters: clamp
        delta_d = max(0, decisions - prev_decisions)
        delta_r = max(0, rejects - prev_rejects)
        self._signal_prev = (decisions, rejects)
        if delta_d:
            fraction = delta_r / delta_d
            self._signal_ema = 0.5 * self._signal_ema + 0.5 * fraction
        oldest = max(
            (
                r.manager.holes.oldest_hole_age(self.sim.now)
                for r in self.replicas
                if r.alive
            ),
            default=0.0,
        )
        # saturate when a hole has outlived ~8 base batch windows
        horizon = 8.0 * max(self.config.gcs.batch_window, 1e-6)
        return max(self._signal_ema, min(1.0, oldest / horizon))

    def _bus_label(self) -> str:
        """Gauge-name prefix for this cluster's GCS bus: ``gcs`` for a
        standalone deployment, ``G<k>.gcs`` for a sharded group (derived
        from the group's replica prefix, e.g. ``"G1-R"`` -> ``"G1"``)."""
        label = self.config.replica_prefix.rstrip("R").rstrip("-")
        return f"{label}.gcs" if label else "gcs"

    def _register_bus_gauges(self) -> None:
        registry = self.obs.registry
        label = self._bus_label()
        bus = self.bus
        registry.gauge(f"{label}.buffer_occupancy", lambda: len(bus._batch_buffer))
        registry.gauge(f"{label}.mean_batch_size", lambda: bus.mean_batch_size)
        registry.gauge(f"{label}.delivered_entries", lambda: bus.delivered_count)
        registry.gauge(f"{label}.reordered_entries", lambda: bus.reordered_entries)
        registry.gauge(f"{label}.reordered_batches", lambda: bus.reordered_batches)
        registry.gauge(f"{label}.batch_window", lambda: bus.current_window)
        if self.stability is not None:
            tracker = self.stability
            registry.gauge(f"{label}.stable_watermark", tracker.stable_seq)

    def _register_replica_gauges(self, replica: MiddlewareReplica) -> None:
        """Point the sampler's per-replica gauges at one (possibly
        recovered) incarnation — re-registering under the same names
        replaces the previous incarnation's callbacks."""
        if self.obs is None:
            return
        registry = self.obs.registry
        name = replica.name
        manager = replica.manager
        registry.gauge(f"{name}.tocommit_depth", lambda: len(manager.queue))
        registry.gauge(f"{name}.holes", manager.holes.hole_count)
        registry.gauge(
            f"{name}.oldest_hole_age",
            lambda: manager.holes.oldest_hole_age(self.sim.now),
        )
        registry.gauge(
            f"{name}.active_sessions", lambda: replica.active_sessions
        )
        registry.gauge(
            f"{name}.cpu_utilization", replica.node.cpu.utilization
        )
        # read through the replica attribute: recovery swaps the
        # certifier object when the donor state is installed
        registry.gauge(
            f"{name}.certifier_window", lambda: replica.certifier.window_size
        )
        registry.gauge(
            f"{name}.certifier_gc_floor", lambda: replica.certifier.floor
        )
        registry.gauge(
            f"{name}.certifier_gc_collected",
            lambda: replica.certifier.gc_collected,
        )
        registry.gauge(
            f"{name}.group_commit_mean_size",
            lambda: manager.group_log.mean_group_size if manager.group_log else 0.0,
        )
        if replica.wslog is not None:
            wslog = replica.wslog
            registry.gauge(f"{name}.log_depth", lambda: wslog.retained_records)
            registry.gauge(f"{name}.log_durable_seq", lambda: wslog.durable_seq)
            registry.gauge(
                f"{name}.log_tail", lambda: wslog.tip_seq - wslog.durable_seq
            )

    # ------------------------------------------------------------ data loading

    def load_schema(self, ddl_statements: Iterable[str]) -> None:
        """Apply CREATE statements identically on every replica.

        With durability on, each statement also becomes a genesis log
        record so the log is replayable from sequence 1 (cold restart
        rebuilds the schema before it replays any writeset).
        """
        for sql in ddl_statements:
            self._schema_ddl.append(sql)
            for node, replica in zip(self.nodes, self.replicas):
                node.db.run_ddl(sql)
                replica.ddl_log.append(sql)
                replica.log_genesis_ddl(sql)
            for reader in self.readers:
                # genesis never rides the feed: readers get it directly
                reader.bootstrap_genesis_ddl(sql)

    def bulk_load(self, table: str, rows: list[dict]) -> None:
        """Seed identical initial data on every replica (csn-0 versions)."""
        for node, replica in zip(self.nodes, self.replicas):
            node.db.bulk_load(table, rows)
            replica.log_genesis_load(table, rows)
        for reader in self.readers:
            reader.bootstrap_rows(table, rows)

    # ----------------------------------------------------------------- clients

    def new_client_host(self, name: Optional[str] = None):
        self._client_count += 1
        label = name or self.network.unique_address("client")
        return self.network.register(label)

    # ------------------------------------------------------------------ faults

    def crash(self, index: int) -> None:
        """Take down a middleware/DB replica pair (§5.4).

        Kills the middleware processes, disconnects its clients, removes
        it from the group (survivors learn via view change after the
        failure-detection delay), and stops discovery responses.
        """
        replica = self.replicas[index]
        if not replica.alive:
            return
        self.discovery.unregister(replica.host.address)
        replica.crash()
        if replica.wslog is not None:
            # appended-but-unflushed log records die with the process;
            # the cluster-wide copies survive in the peers' logs
            replica.wslog.drop_tail()
        self.bus.crash(replica.name)
        self.network.crash(replica.host.address)
        if self.tracer is not None:
            # a crashed replica's in-flight spans will never finish
            # normally; close them so they export with status="crashed"
            self.tracer.close_open(replica=replica.name, status="crashed")
        if self.monitor is not None:
            # its history is legitimately a prefix now — auditing it
            # further would only raise false lost-writeset flags
            self.monitor.unwatch(replica.name)
        if self.obs is not None:
            # drop the dead incarnation's gauges instead of letting the
            # sampler probe them as NaN forever (recovery re-registers)
            self.obs.registry.unregister_prefix(f"{replica.name}.")
        if self.flight is not None:
            self.flight.snapshot(
                f"crash:{replica.name}", replica=replica.name, index=index
            )

    def alive_replicas(self) -> list[MiddlewareReplica]:
        return [r for r in self.replicas if r.alive]

    def _pick_donor(self, exclude: int) -> int:
        """Best recovery donor: the alive replica with the most durable
        log (it can serve the longest delta) and, tie-broken, the
        shallowest to-commit queue (least busy applying writesets)."""
        candidates = [
            i for i, r in enumerate(self.replicas) if r.alive and i != exclude
        ]
        if not candidates:
            raise ValueError("no alive donor replica")

        def score(i: int) -> tuple:
            replica = self.replicas[i]
            durable_seq = (
                replica.wslog.durable_seq if replica.wslog is not None else 0
            )
            return (-durable_seq, len(replica.manager.queue), i)

        return min(candidates, key=score)

    def recover_replica(
        self,
        index: int,
        donor_index: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> MiddlewareReplica:
        """Bring a crashed replica back online (§5.4 recovery, extended
        to the *online* scheme of §8: transaction processing continues).

        The new incarnation joins the group and multicasts a sync
        request.  On a durable cluster the default ``mode`` is
        ``"delta"``: the rejoiner replays its own durable log (plus its
        newest checkpoint) and the donor ships only the log records
        above the rejoiner's durable position — transfer proportional to
        downtime, and the history stays auditable.  ``mode="full"`` (the
        only mode without durability) ships the donor's entire committed
        state captured atomically at the sync point.  The donor defaults
        to the alive replica with the highest durable log / shallowest
        queue; ``donor_index`` overrides.
        """
        old = self.replicas[index]
        if old.alive:
            raise ValueError(f"replica {index} is still alive")
        if donor_index is None:
            donor_index = self._pick_donor(exclude=index)
        donor = self.replicas[donor_index]
        if not donor.alive:
            raise ValueError(f"donor replica {donor_index} is not alive")
        name = old.name
        incarnation = self._incarnations.get(name, 0) + 1
        self._incarnations[name] = incarnation
        node, replica = self._spawn_replica(
            index, name, incarnation=incarnation,
            recover_from=donor.name, mode=mode,
        )
        self.nodes[index] = node
        self.replicas[index] = replica
        # excluded from audits until recovery completes; a delta recovery
        # re-admits it (see _on_replica_recovered)
        self._recovered.add(name)
        self._register_replica_gauges(replica)
        return replica

    def add_replica(self, donor_index: Optional[int] = None) -> MiddlewareReplica:
        """Elastic online join: bootstrap replica N+1 while traffic
        continues (§8's online recovery, applied to a brand-new member).

        The joiner runs the ordinary recovery handshake with an empty
        local log, so a durable donor ships checkpoint + log suffix (or
        the whole log when nothing was truncated) and a non-durable one
        a full state transfer.  Clients discover it once installed.
        """
        index = len(self.replicas)
        if donor_index is None:
            donor_index = self._pick_donor(exclude=index)
        donor = self.replicas[donor_index]
        if not donor.alive:
            raise ValueError(f"donor replica {donor_index} is not alive")
        name = f"{self.config.replica_prefix}{index}"
        node, replica = self._spawn_replica(
            index, name, recover_from=donor.name,
        )
        self.nodes.append(node)
        self.replicas.append(replica)
        self._recovered.add(name)
        self._register_replica_gauges(replica)
        return replica

    def _on_replica_recovered(self, replica: MiddlewareReplica) -> None:
        """Recovery completed: rejoin the watermark and, if the whole
        history is made of replayable transactions, the audits."""
        name = replica.name
        if self.stability is not None and replica.wslog is not None:
            self.stability.register(name, replica.wslog.durable_seq)
            replica.member.ack_durable(replica.wslog.durable_seq)
        if replica.audit_complete:
            self._recovered.discard(name)
            if self.monitor is not None:
                # re-watch with the replayed prefix marked covered: those
                # gids committed here via log replay, before any event
                # the history will record
                self.monitor.watch(
                    name,
                    replica.db,
                    covered=frozenset(gid for gid, _keys in replica.replayed),
                )
        if self.flight is not None:
            self.flight.snapshot(
                f"recovered:{name}", replica=name, stats=replica.recovery_stats
            )

    @classmethod
    def cold_restart(
        cls,
        config: ClusterConfig,
        durability: DurabilityStore,
        **kwargs,
    ) -> "SIRepCluster":
        """Rebuild a whole cluster from durable logs after every replica
        stopped (full-cluster crash).

        Each replica replays its own checkpoint + log; replicas whose
        log ends early (their tail died with them) catch up from the
        longest log before traffic starts.  Do NOT re-run
        ``load_schema``/``bulk_load`` — genesis records replay them.
        """
        cluster = cls(config, durability=durability, cold_start=True, **kwargs)
        cluster._level_after_cold_restart()
        return cluster

    def _level_after_cold_restart(self) -> None:
        """Post-cold-start leveling: bring short-logged replicas up to
        the longest log, then admit everyone to watermark + audits."""
        best = max(
            self.replicas,
            key=lambda r: r.wslog.tip_seq if r.wslog is not None else 0,
        )
        if best.wslog is not None:
            for replica in self.replicas:
                if replica.wslog.tip_seq < best.wslog.tip_seq:
                    replica.catch_up(
                        best.wslog.records_after(replica.wslog.tip_seq)
                    )
                if self.stability is not None:
                    self.stability.register(
                        replica.name, replica.wslog.durable_seq
                    )
                    replica.member.ack_durable(replica.wslog.durable_seq)
        for replica in self.replicas:
            if not replica.audit_complete:
                self._recovered.add(replica.name)
            elif self.monitor is not None:
                self.monitor.watch(
                    replica.name,
                    replica.db,
                    covered=frozenset(gid for gid, _keys in replica.replayed),
                )
        # readers restart empty (no durable log of their own): bootstrap
        # each from the leveled longest log, then admit to the monitor
        for reader in self.readers:
            if best.wslog is not None:
                reader.bootstrap_replay(best.wslog.records_after(0))
            if self.monitor is not None:
                self._watch_reader(reader)

    # ------------------------------------------------------------------ audits

    def one_copy_report(self) -> OneCopyReport:
        """Run the Definition-3 checker over the recorded histories.

        Only replicas that are still alive are audited: a crashed replica
        legitimately misses the suffix of committed transactions.
        Recovered replicas are also excluded — their pre-recovery history
        arrived via state transfer, not as begin/commit events — so the
        audit covers the continuously-alive replicas.
        """
        audited = [
            r
            for r in self.replicas
            if r.alive and r.name not in self._recovered
        ]
        # lazy read replicas are full members of the audit: their applied
        # stream is real remote transactions in certification order, and
        # their local read-only snapshots must embed into the 1-copy-SI
        # order like anyone else's.  Snapshot-joined readers (row images,
        # audit_complete=False) are excluded like full-state recoveries.
        audited += [r for r in self.readers if r.alive and r.audit_complete]
        databases = {r.name: r.node.db for r in audited}
        schedules, locality = recorded_schedules(databases)
        # A log-replayed prefix (delta recovery, cold restart) committed
        # before the recorded history began, so it produced no events.
        # Synthesise writes-only transactions for it — positioned before
        # everything else — so the checker sees the same transaction set
        # at every replica instead of flagging the prefix as divergence.
        for replica in audited:
            if not replica.replayed:
                continue
            schedule = schedules[replica.name]
            prefix_txns = {}
            prefix_events = []
            for gid, keys in replica.replayed:
                if gid in schedule.transactions or gid in prefix_txns:
                    continue
                prefix_txns[gid] = TxnSpec(gid, frozenset(), keys)
                prefix_events.append((BEGIN, gid))
                prefix_events.append((COMMIT, gid))
            if prefix_txns:
                schedules[replica.name] = Schedule(
                    transactions={**prefix_txns, **schedule.transactions},
                    events=prefix_events + list(schedule.events),
                )
        # Transactions whose local replica crashed before commit do not
        # appear anywhere; transactions recorded at survivors keep their
        # locality mapping even if the home replica died mid-run.
        for name, schedule in schedules.items():
            for gid in schedule.transactions:
                locality.setdefault(gid, self._home_of(gid))
        report = check_one_copy_si(schedules, locality)
        if not report.ok and self.flight is not None:
            self.flight.snapshot(
                "audit-failed",
                violations=[str(v) for v in report.violations],
                cycle=[str(event) for event in (report.cycle or [])],
            )
        return report

    def _home_of(self, gid: str) -> str:
        # gid format: "<replica>[.<incarnation>]:g<n>"
        return gid.split(":", 1)[0].split(".", 1)[0]

    # ------------------------------------------------------------------- stats

    def total_commits(self) -> int:
        return sum(r.stats_commits + r.stats_readonly_commits for r in self.replicas)

    def total_certification_aborts(self) -> int:
        return sum(r.stats_aborts for r in self.replicas)

    def hole_wait_fraction(self) -> float:
        attempts = sum(r.manager.holes.start_attempts for r in self.replicas)
        waits = sum(r.manager.holes.start_waits for r in self.replicas)
        return waits / attempts if attempts else 0.0

    def metrics(self) -> dict:
        """Operational snapshot across replicas (monitoring surface)."""
        per_replica = {}
        for replica in self.replicas:
            manager = replica.manager
            per_replica[replica.name] = {
                "alive": replica.alive,
                "recovered": replica.name in self._recovered,
                "active_sessions": replica.active_sessions,
                "update_commits": replica.stats_commits,
                "readonly_commits": replica.stats_readonly_commits,
                "certification_aborts": replica.stats_aborts,
                "salvaged": replica.certifier.salvaged,
                "salvage_rejects": replica.certifier.salvage_rejects,
                "certifier_window": replica.certifier.window_size,
                "certifier_gc_floor": replica.certifier.floor,
                "certifier_gc_collected": replica.certifier.gc_collected,
                "certifier_floor_aborts": replica.certifier.floor_aborts,
                "tocommit_queue_len": len(manager.queue),
                "tocommit_appended": manager.queue.appended_total,
                "tocommit_batches": manager.queue.appended_batches,
                "remote_apply_retries": manager.remote_apply_retries,
                "group_commit_flushes": (
                    manager.group_log.flushes if manager.group_log else 0
                ),
                "group_commit_mean_size": (
                    manager.group_log.mean_group_size if manager.group_log else 0.0
                ),
                "hole_wait_fraction": manager.holes.hole_wait_fraction,
                "db_commits": replica.node.db.commits,
                "db_aborts": replica.node.db.aborts,
                "db_versions": replica.node.db.version_count(),
                "cpu_utilization": (
                    replica.node.cpu.utilization() if replica.node.cpu else 0.0
                ),
            }
            if replica.wslog is not None:
                per_replica[replica.name].update({
                    "log_tip_seq": replica.wslog.tip_seq,
                    "log_durable_seq": replica.wslog.durable_seq,
                    "log_depth": replica.wslog.retained_records,
                    "log_bytes": replica.wslog.durable_bytes,
                    "log_flushes": replica.wslog.flushes,
                    "checkpoints": (
                        replica.checkpoints.saved
                        if replica.checkpoints is not None
                        else 0
                    ),
                })
            if replica.recovery_stats:
                per_replica[replica.name]["recovery"] = dict(
                    replica.recovery_stats
                )
        out = {
            "now": self.sim.now,
            # which clock produced these numbers — sim seconds and wall
            # seconds must never be compared against each other
            "runtime": self.clock,
            "commits": self.total_commits(),
            "certification_aborts": self.total_certification_aborts(),
            "gcs_deliveries": self.bus.delivered_count,
            "gcs_batches": self.bus.delivered_batches,
            "gcs_mean_batch_size": self.bus.mean_batch_size,
            # contention-engine counters: certification is deterministic
            # and identical everywhere, so the cluster-level salvage
            # totals are the max over replicas, not the sum
            "reordered_total": self.bus.reordered_entries,
            "salvaged_total": max(
                (r.certifier.salvaged for r in self.replicas), default=0
            ),
            "salvage_rejects": max(
                (r.certifier.salvage_rejects for r in self.replicas), default=0
            ),
            # per-replica engine counter (blind stages that skipped the
            # eager first-updater check): a sum, unlike the cert totals
            "deferred_ww_total": sum(r.db.deferred_ww for r in self.replicas),
            "batch_window": self.bus.current_window,
            "replicas": per_replica,
        }
        if self.readers:
            out["readers"] = {r.name: r.metrics() for r in self.readers}
            out["feed"] = self.feed.metrics()
        if self.stability is not None:
            out["stable_watermark"] = self.stability.stable_seq()
        if self.trace is not None:
            out["trace"] = self.trace.breakdown()
            out["trace_batches"] = self.trace.batch_breakdown()
        if self.tracer is not None and self._owns_tracer:
            out["span_trace"] = {
                "started": self.tracer.started,
                "finished": self.tracer.finished_count,
                "open": len(self.tracer.open_spans()),
            }
        if self.monitor is not None:
            out["monitor"] = self.monitor.summary()
        if self.obs is not None and self._owns_obs:
            out["obs"] = self.obs.snapshot()
        # strict JSON: results/*.json must never contain literal NaN
        return sanitize(out)

    def stop(self) -> None:
        if self.monitor is not None:
            self.monitor.stop()
        for replica in self.replicas:
            if replica.alive:
                replica.crash()
        for reader in self.readers:
            if reader.alive:
                reader.crash()
        if self.tracer is not None and self._owns_tracer:
            self.tracer.close_open(status="shutdown")
        if self.obs is not None and self._owns_obs:
            for replica in self.replicas:
                self.obs.registry.unregister_prefix(f"{replica.name}.")
            for reader in self.readers:
                self.obs.registry.unregister_prefix(f"{reader.name}.")
        if self.clock == "wall" and self._owns_runtime:
            # wall runtime holds real resources (sockets, timers, an
            # event loop); sweep them so repeated runs never leak
            self.sim.stop()
