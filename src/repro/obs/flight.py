"""Crash flight recorder: the last moments of a run, dumped on failure.

A :class:`FlightRecorder` keeps nothing of its own while things go well —
it reads the bounded rings the tracer and event log already maintain.
When something goes wrong (a replica crash, a failed 1-copy-SI audit, a
monitor violation, an unhandled exception under :meth:`guard`), it
captures a **snapshot**: the most recent finished spans, every still-open
span (the transactions that were in flight), the event-log tail, and the
caller's context — and writes it to ``directory`` as strict JSON when one
is configured.

``python -m repro.obs.flight dump.json`` renders a post-mortem:
a per-replica timeline of the captured spans, the open (interrupted)
work, and the trailing protocol events.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
from typing import Optional

from repro.obs.metrics import sanitize

#: schema tag so future readers can detect old dumps
FORMAT_VERSION = 1


class FlightRecorder:
    """Bounded black box over a tracer and an event log."""

    def __init__(
        self,
        sim,
        tracer=None,
        events=None,
        max_spans: int = 2000,
        max_events: int = 2000,
        max_snapshots: int = 16,
        directory: Optional[str] = None,
    ):
        self.sim = sim
        self.tracer = tracer
        self.events = events
        self.max_spans = max_spans
        self.max_events = max_events
        self.max_snapshots = max_snapshots
        self.directory = directory
        #: in-memory snapshots, oldest dropped past ``max_snapshots``
        self.snapshots: list[dict] = []
        #: paths written when ``directory`` is configured
        self.dumped: list[str] = []

    # -- capture -----------------------------------------------------------------

    def snapshot(self, reason: str, **context) -> dict:
        """Capture the recorder's view of right now (and maybe dump it)."""
        snap = {
            "format": FORMAT_VERSION,
            "reason": reason,
            "t": self.sim.now,
            "context": sanitize(context),
            "spans": [],
            "open_spans": [],
            "events": [],
        }
        if self.tracer is not None:
            snap["spans"] = [
                sanitize(span.to_dict())
                for span in self.tracer.spans()[-self.max_spans :]
            ]
            snap["open_spans"] = [
                sanitize(span.to_dict()) for span in self.tracer.open_spans()
            ]
        if self.events is not None:
            snap["events"] = [
                sanitize(row) for row in self.events.tail(self.max_events)
            ]
        self.snapshots.append(snap)
        if len(self.snapshots) > self.max_snapshots:
            del self.snapshots[0]
        if self.directory is not None:
            self.dump(snap)
        return snap

    def dump(self, snap: dict, path: Optional[str] = None) -> str:
        """Write one snapshot as strict JSON; returns the path."""
        if path is None:
            os.makedirs(self.directory, exist_ok=True)
            reason = "".join(
                c if c.isalnum() or c in "-_" else "-" for c in snap["reason"]
            )
            path = os.path.join(
                self.directory, f"flight-{reason}-{snap['t']:.6f}.json"
            )
        with open(path, "w") as handle:
            json.dump(snap, handle, indent=2, allow_nan=False)
        self.dumped.append(path)
        return path

    @contextlib.contextmanager
    def guard(self, reason: str = "exception", **context):
        """Snapshot automatically if the guarded block raises."""
        try:
            yield self
        except BaseException as err:
            self.snapshot(reason, error=repr(err), **context)
            raise


# -- the post-mortem CLI ---------------------------------------------------------


def _format_span(span: dict) -> str:
    end = span.get("end")
    interval = (
        f"{span['start']:.6f}..{'open':>9}"
        if end is None
        else f"{span['start']:.6f}..{end:.6f}"
    )
    duration = "" if end is None else f" ({1000.0 * (end - span['start']):.2f} ms)"
    flag = "" if span.get("status") == "ok" else f" [{span.get('status')}]"
    return f"  {interval}{duration}  {span['name']}  {span['trace_id']}{flag}"


def render(snap: dict, tail: int = 20) -> str:
    """Human-readable post-mortem of one flight snapshot."""
    lines = [
        f"flight recorder snapshot — reason: {snap['reason']} "
        f"at t={snap['t']:.6f}",
    ]
    context = snap.get("context") or {}
    if context:
        lines.append(f"context: {json.dumps(context, sort_keys=True)}")
    spans = list(snap.get("spans", [])) + list(snap.get("open_spans", []))
    by_replica: dict[str, list[dict]] = {}
    for span in spans:
        by_replica.setdefault(span.get("replica") or "-", []).append(span)
    for replica in sorted(by_replica):
        rows = sorted(
            by_replica[replica],
            key=lambda s: (s["start"], s.get("span_id", 0)),
        )[-tail:]
        lines.append(f"replica {replica}: last {len(rows)} spans")
        lines.extend(_format_span(span) for span in rows)
    interrupted = snap.get("open_spans", [])
    lines.append(f"in flight at capture: {len(interrupted)} open span(s)")
    events = snap.get("events", [])[-tail:]
    if events:
        lines.append(f"last {len(events)} protocol events:")
        for row in events:
            fields = {
                k: v for k, v in row.items() if k not in ("t", "event")
            }
            lines.append(
                f"  t={row['t']:.6f}  {row['event']}  "
                f"{json.dumps(fields, sort_keys=True, default=str)}"
            )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.flight",
        description="Render a flight-recorder dump as a per-replica timeline.",
    )
    parser.add_argument("dump", help="path to a flight-*.json snapshot")
    parser.add_argument(
        "--tail",
        type=int,
        default=20,
        help="spans/events shown per replica (default 20)",
    )
    args = parser.parse_args(argv)
    with open(args.dump) as handle:
        snap = json.load(handle)
    print(render(snap, tail=args.tail))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    raise SystemExit(main())
