"""Unit tests for the lock manager and deadlock detection."""


from repro.errors import DeadlockDetected
from repro.sim import Simulator
from repro.storage.locks import LockManager


def test_uncontended_acquire_is_immediate():
    sim = Simulator()
    locks = LockManager()

    def proc():
        yield from locks.acquire("t1", "k")
        return sim.now

    assert sim.run_process(proc()) == 0.0
    assert locks.holder("k") == "t1"


def test_reentrant_acquire():
    sim = Simulator()
    locks = LockManager()

    def proc():
        yield from locks.acquire("t1", "k")
        yield from locks.acquire("t1", "k")  # must not self-block
        return True

    assert sim.run_process(proc()) is True


def test_contended_acquire_blocks_until_release():
    sim = Simulator()
    locks = LockManager()
    log = []

    def holder():
        yield from locks.acquire("t1", "k")
        yield sim.sleep(5.0)
        locks.release_all("t1")

    def waiter():
        yield sim.sleep(1.0)
        yield from locks.acquire("t2", "k")
        log.append(sim.now)

    sim.spawn(holder(), name="holder")
    sim.spawn(waiter(), name="waiter")
    sim.run()
    assert log == [5.0]
    assert locks.holder("k") == "t2"


def test_fifo_grant_order():
    sim = Simulator()
    locks = LockManager()
    order = []

    def holder():
        yield from locks.acquire("t0", "k")
        yield sim.sleep(1.0)
        locks.release_all("t0")

    def waiter(name, delay):
        yield sim.sleep(delay)
        yield from locks.acquire(name, "k")
        order.append(name)
        locks.release_all(name)

    sim.spawn(holder(), name="holder")
    sim.spawn(waiter("t1", 0.1), name="w1")
    sim.spawn(waiter("t2", 0.2), name="w2")
    sim.spawn(waiter("t3", 0.3), name="w3")
    sim.run()
    assert order == ["t1", "t2", "t3"]


def test_release_all_returns_keys_and_cleans_up():
    sim = Simulator()
    locks = LockManager()

    def proc():
        yield from locks.acquire("t1", "a")
        yield from locks.acquire("t1", "b")
        return locks.release_all("t1")

    released = sim.run_process(proc())
    assert set(released) == {"a", "b"}
    assert locks.held_count() == 0


def test_two_party_deadlock_detected():
    sim = Simulator()
    locks = LockManager()
    outcomes = {}

    def t1():
        yield from locks.acquire("t1", "x")
        yield sim.sleep(1.0)
        try:
            yield from locks.acquire("t1", "y")
            outcomes["t1"] = "ok"
        except DeadlockDetected:
            outcomes["t1"] = "deadlock"
            locks.release_all("t1")

    def t2():
        yield from locks.acquire("t2", "y")
        yield sim.sleep(0.5)
        yield from locks.acquire("t2", "x")  # blocks behind t1
        outcomes["t2"] = "ok"
        locks.release_all("t2")

    sim.spawn(t1(), name="t1")
    sim.spawn(t2(), name="t2")
    sim.run()
    # t2 blocks on x at 0.5; t1 requests y at 1.0 -> cycle -> t1 aborts.
    assert outcomes == {"t1": "deadlock", "t2": "ok"}
    assert locks.deadlocks_detected == 1


def test_three_party_deadlock_detected():
    sim = Simulator()
    locks = LockManager()
    outcomes = {}

    def party(me, first, second, delay):
        yield from locks.acquire(me, first)
        yield sim.sleep(delay)
        try:
            yield from locks.acquire(me, second)
            outcomes[me] = "ok"
        except DeadlockDetected:
            outcomes[me] = "deadlock"
        locks.release_all(me)

    sim.spawn(party("a", "x", "y", 1.0), name="a")
    sim.spawn(party("b", "y", "z", 1.0), name="b")
    sim.spawn(party("c", "z", "x", 2.0), name="c")
    sim.run()
    # a waits for b, b waits for c; c's request on x closes the cycle.
    assert outcomes["c"] == "deadlock"
    assert outcomes["a"] == "ok"
    assert outcomes["b"] == "ok"


def test_deadlock_through_wait_queue_position():
    """A requester behind another waiter must see the full waits-for chain."""
    sim = Simulator()
    locks = LockManager()
    outcomes = {}

    def holder():
        yield from locks.acquire("h", "k")
        yield sim.sleep(2.0)
        try:
            # h waits for w (w is queued on k before h's second need? no -
            # h holds k; h now wants "w-held" which w holds -> cycle via
            # w waiting on k).
            yield from locks.acquire("h", "w-held")
            outcomes["h"] = "ok"
        except DeadlockDetected:
            outcomes["h"] = "deadlock"
            locks.release_all("h")

    def waiter():
        yield from locks.acquire("w", "w-held")
        yield sim.sleep(1.0)
        yield from locks.acquire("w", "k")
        outcomes["w"] = "ok"
        locks.release_all("w")

    sim.spawn(holder(), name="h")
    sim.spawn(waiter(), name="w")
    sim.run()
    assert outcomes == {"h": "deadlock", "w": "ok"}


def test_no_false_deadlock_on_simple_contention():
    sim = Simulator()
    locks = LockManager()

    def t1():
        yield from locks.acquire("t1", "x")
        yield sim.sleep(1.0)
        locks.release_all("t1")

    def t2():
        yield sim.sleep(0.5)
        yield from locks.acquire("t2", "x")
        locks.release_all("t2")
        return "fine"

    sim.spawn(t1(), name="t1")
    assert sim.run_process(t2()) == "fine"
    assert locks.deadlocks_detected == 0


def test_release_all_removes_from_wait_queue():
    sim = Simulator()
    locks = LockManager()
    order = []

    def holder():
        yield from locks.acquire("h", "k")
        yield sim.sleep(2.0)
        locks.release_all("h")

    def doomed():
        yield sim.sleep(0.1)
        yield from locks.acquire("d", "k")
        order.append("d")  # never reached; we cancel it below

    def survivor():
        yield sim.sleep(0.2)
        yield from locks.acquire("s", "k")
        order.append("s")

    sim.spawn(holder(), name="h")
    doomed_proc = sim.spawn(doomed(), name="d")
    sim.spawn(survivor(), name="s")
    sim.run(until=1.0)
    doomed_proc.kill()
    locks.release_all("d")
    sim.run()
    assert order == ["s"]
    assert locks.holder("k") == "s"
