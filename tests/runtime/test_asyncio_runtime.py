"""AsyncioRuntime-specific behavior: graceful shutdown and resource hygiene.

The contract tests prove the wall runtime schedules like the simulator;
these prove it *cleans up* like a real server — ``stop()`` fails blocked
waiters instead of leaking them, closes every socket and timer, and a
process can start and stop clusters repeatedly without accumulating
file descriptors or hanging.
"""

import os
import time

import pytest

from repro.errors import RuntimeStopped
from repro.runtime import AsyncioRuntime, make_runtime
from repro.sim.sync import OneShot, Queue


def open_fds() -> int:
    return len(os.listdir("/proc/self/fd"))


def test_make_runtime_kinds():
    from repro.errors import ReproError
    from repro.sim import Simulator

    assert isinstance(make_runtime("sim"), Simulator)
    wall = make_runtime("wall")
    assert isinstance(wall, AsyncioRuntime)
    wall.stop()
    with pytest.raises(ReproError):
        make_runtime("quantum")


def test_wall_clock_actually_elapses():
    rt = AsyncioRuntime(seed=0)
    try:
        started = time.monotonic()

        def proc():
            yield rt.sleep(0.05)
            return rt.now

        now = rt.run_process(proc())
        elapsed = time.monotonic() - started
        assert now >= 0.05
        assert elapsed >= 0.05
    finally:
        rt.stop()


def test_rng_streams_match_simulator():
    """Cross-runtime comparability: the same seed yields the same
    per-stream random sequences on both runtimes."""
    from repro.sim import Simulator

    sim = Simulator(seed=7)
    rt = AsyncioRuntime(seed=7)
    try:
        for stream in ("net", "gcs", "wl"):
            assert [rt.rng(stream).random() for _ in range(5)] == [
                sim.rng(stream).random() for _ in range(5)
            ]
    finally:
        rt.stop()


def test_stop_fails_pending_one_shot_waiters():
    """The shutdown sweep throws :class:`RuntimeStopped` into every
    process still blocked on an event — the OneShot ``fail`` path — so
    nothing is silently abandoned mid-request."""
    rt = AsyncioRuntime(seed=0)
    slot = OneShot()
    log = []

    def waiter():
        try:
            yield slot.wait()
            log.append("resolved")
        except RuntimeStopped:
            log.append("stopped")

    rt.spawn(waiter(), name="waiter", daemon=True)

    def settle():
        yield rt.sleep(0.01)

    rt.run_process(settle())
    assert log == []  # still parked on the slot
    rt.stop()
    assert log == ["stopped"]


def test_stop_is_idempotent_and_cancels_timers():
    rt = AsyncioRuntime(seed=0)
    fired = []

    def proc():
        rt.call_at(rt.now + 60.0, lambda: fired.append("late"))
        yield rt.sleep(0.01)

    rt.run_process(proc())
    rt.stop()
    rt.stop()  # second stop must be a no-op, not an error
    assert not fired
    assert not rt._timers


def test_twenty_cluster_cycles_leak_nothing():
    """Regression for shutdown hygiene: start and stop a wall-clock
    cluster 20 times in one process.  No leaked listening sockets or
    event loops (file-descriptor count stays flat) and no hangs."""
    from repro.client import Driver
    from repro.core import ClusterConfig, SIRepCluster
    from repro.testing import run_txn

    # a warmup cycle lets lazy imports/caches allocate their fds
    baseline = None
    for cycle in range(20):
        cluster = SIRepCluster(
            ClusterConfig(n_replicas=2, seed=cycle, runtime="wall")
        )
        sim = cluster.sim
        cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
        cluster.bulk_load("kv", [{"k": 1, "v": 0}])
        driver = Driver(cluster.network, cluster.discovery)

        def one_commit():
            conn = yield from driver.connect(cluster.new_client_host())
            yield from conn.execute(
                "UPDATE kv SET v = ? WHERE k = 1", (cycle,)
            )
            yield from conn.commit()
            return True

        assert sim.run_process(one_commit()) is True
        cluster.stop()
        if cycle == 0:
            baseline = open_fds()
    assert baseline is not None
    # allow a little slack for interpreter-internal churn, but leaked
    # sockets/pipes/loops would add several fds per cycle
    assert open_fds() <= baseline + 4


def test_queue_survives_stop_without_leak_warnings():
    """Processes blocked on queues at stop() are killed cleanly; a
    subsequent fresh runtime in the same process is unaffected."""
    rt = AsyncioRuntime(seed=0)
    q = Queue("q")

    def consumer():
        while True:
            yield q.get()

    rt.spawn(consumer(), name="consumer", daemon=True)

    def settle():
        yield rt.sleep(0.01)

    rt.run_process(settle())
    rt.stop()

    rt2 = AsyncioRuntime(seed=0)
    try:
        def proc():
            yield rt2.sleep(0.01)
            return "fresh"

        assert rt2.run_process(proc()) == "fresh"
    finally:
        rt2.stop()
