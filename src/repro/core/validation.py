"""Optimistic writeset certification (Fig. 1 step I.3 / Fig. 4 step II).

A transaction T carries a certificate ``cert``: the tid of the last
validated (Fig. 4) or last locally-committed (Fig. 1) transaction observed
when T's snapshot position was fixed.  Validation of T fails iff some
already-validated transaction Tj with ``T.cert < Tj.tid`` overlaps T's
writeset — i.e. a concurrent writer was certified first.

The check "∃ Tj ∈ ws_list: cert < Tj.tid ∧ WS ∩ WSj ≠ ∅" is implemented
with a per-tuple last-certified-tid map, which is observationally
identical to scanning ``ws_list`` but O(|WS|) per validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional

from repro.storage.writeset import DELETE, WriteSet


@dataclass
class WsRecord:
    """A writeset travelling through certification.

    ``readset`` carries the (table, pk) keys whose *values* the
    transaction's writes depend on (read-modify-write); ``blind`` the
    written keys whose after images were computed without reading the
    row.  Both are empty unless the sender threads them through, which
    keeps salvage a strict opt-in: with an empty ``blind`` set every
    conflict aborts, exactly as before.
    """

    gid: str
    writeset: WriteSet
    cert: int
    sender: str = ""
    tid: Optional[int] = None
    readset: FrozenSet[tuple[str, Any]] = field(default_factory=frozenset)
    blind: FrozenSet[tuple[str, Any]] = field(default_factory=frozenset)
    #: set by the certifier when the record committed via cert refresh
    salvaged: bool = False

    def conflicts_with(self, other: "WsRecord") -> bool:
        return self.writeset.conflicts_with(other.writeset)


class Certifier:
    """Deterministic certification state.

    Every SRCA-Rep middleware replica holds one and feeds it writesets in
    total-order delivery sequence, so all replicas reach identical
    decisions (§5.3).
    """

    def __init__(self, salvage: bool = False) -> None:
        #: opt-in SCAR-style cert refresh for blind-write-only conflicts
        self.salvage = salvage
        self.last_validated_tid = 0
        #: (table, pk) -> tid of the last certified transaction writing it
        self._last_writer: dict[tuple[str, Any], int] = {}
        #: keys whose last certified write was a DELETE — a blind write
        #: over a tombstone cannot be replayed as a plain after image, so
        #: salvage refuses to commute past it
        self._deleted: set[tuple[str, Any]] = set()
        self.validated = 0
        self.rejected = 0
        self.salvaged = 0
        self.salvage_rejects = 0
        #: window-GC truncation point: every certificate this instance
        #: will ever be asked to decide is >= floor (the caller proves
        #: it — see srca_rep's delivered-cert floor), so last-writer
        #: entries with tid <= floor can never satisfy ``tid > cert``
        #: again and :meth:`collect` prunes them
        self.floor = 0
        self.gc_runs = 0
        self.gc_collected = 0
        #: defence in depth: a certificate below the floor reached a
        #: certifier whose pruned state cannot decide it — deterministic
        #: conservative abort (never fires when the floor is sound)
        self.floor_aborts = 0

    def conflicts(self, record: WsRecord) -> bool:
        """Would ``record`` fail validation right now? (No state change.)"""
        return any(
            self._last_writer.get(key, 0) > record.cert
            for key in record.writeset.keys
        )

    def _try_salvage(self, record: WsRecord) -> bool:
        """Refresh ``record.cert`` to now iff the shift is invisible.

        Moving a transaction's logical snapshot forward to
        ``last_validated_tid`` is sound iff (a) every conflicting key was
        written *blindly* — first-committer-wins only protects values the
        loser actually read, so read-modify-write keys still abort — and
        (b) no key the transaction's writes depend on (its dependent
        readset) was overwritten in the shift interval, and (c) no
        conflicting predecessor deleted the row out from under the blind
        after image.  All inputs are deterministic delivery-order state,
        so every replica reaches the same salvage decision.
        """
        for key in record.writeset.keys:
            if self._last_writer.get(key, 0) <= record.cert:
                continue  # not a conflicting key
            if key not in record.blind or key in record.readset:
                return False  # read-modify-write: first committer wins
            if key in self._deleted:
                return False  # predecessor deleted the row (tombstone)
        for key in record.readset:
            if self._last_writer.get(key, 0) > record.cert:
                return False  # a dependent read went stale over the shift
        record.cert = self.last_validated_tid
        record.salvaged = True
        return True

    def validate(self, record: WsRecord) -> bool:
        """Certify ``record``; on success assigns ``record.tid``.

        Must be called in writeset delivery (total) order.
        """
        if record.cert < self.floor:
            # the GC floor guarantees no in-flight certificate sits below
            # it; if one ever does, conflicts() would consult pruned
            # state, so abort conservatively.  A sound floor means this
            # never fires — the counter existing is what lets tests and
            # dashboards assert that.
            self.floor_aborts += 1
            self.rejected += 1
            return False
        if self.conflicts(record):
            if not (self.salvage and self._try_salvage(record)):
                if self.salvage:
                    self.salvage_rejects += 1
                self.rejected += 1
                return False
            self.salvaged += 1
        self.last_validated_tid += 1
        record.tid = self.last_validated_tid
        for key in record.writeset.keys:
            self._last_writer[key] = record.tid
        for op in record.writeset.ops:
            if op.op == DELETE:
                self._deleted.add(op.key)
            else:
                self._deleted.discard(op.key)
        self.validated += 1
        return True

    def validate_batch(self, records: list[WsRecord]) -> list[bool]:
        """Certify a delivered batch as one ordered unit.

        Entries stay individually ordered: each validates against the
        state left by its in-batch predecessors, so the decisions are
        identical to delivering the same records one message at a time.
        """
        return [self.validate(record) for record in records]

    @property
    def decisions(self) -> int:
        return self.validated + self.rejected

    @property
    def window_size(self) -> int:
        """Tuples tracked in the last-writer map — the certification
        working set (bounded by the active window once :meth:`collect`
        runs; grows with the distinct keys ever written otherwise)."""
        return len(self._last_writer)

    def collect(self, floor: int) -> int:
        """Prune last-writer entries with ``tid <= floor``.

        Sound iff every certificate still to be validated is >= ``floor``
        (the caller's invariant): a pruned entry then can never satisfy
        the conflict test ``tid > cert`` again, and its absence reads as
        tid 0 — the same decision.  Tombstones are pruned in lockstep:
        salvage only consults ``_deleted`` for *conflicting* keys, whose
        last writer is by definition above the floor and hence retained.
        Returns the number of keys swept; the floor is monotone.
        """
        if floor <= self.floor:
            return 0
        self.floor = floor
        dead = [key for key, tid in self._last_writer.items() if tid <= floor]
        for key in dead:
            del self._last_writer[key]
            self._deleted.discard(key)
        self.gc_runs += 1
        self.gc_collected += len(dead)
        return len(dead)

    def clone(self) -> "Certifier":
        """Snapshot for recovery state transfer: a recovering replica
        resumes certification from the donor's exact decision state —
        including the tombstone set, salvage mode, the GC floor, and the
        decision counters, so its future salvage decisions AND its
        reported certification metrics match the donor's (a joiner that
        zeroed ``validated``/``rejected`` would diverge from every peer's
        monitoring surface)."""
        other = Certifier(salvage=self.salvage)
        other.last_validated_tid = self.last_validated_tid
        other._last_writer = dict(self._last_writer)
        other._deleted = set(self._deleted)
        other.floor = self.floor
        other.validated = self.validated
        other.rejected = self.rejected
        other.salvaged = self.salvaged
        other.salvage_rejects = self.salvage_rejects
        other.gc_runs = self.gc_runs
        other.gc_collected = self.gc_collected
        other.floor_aborts = self.floor_aborts
        return other
