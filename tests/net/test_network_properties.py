"""Property tests: channel FIFO order holds under any jitter/schedule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LatencyModel, Network
from repro.sim import Simulator


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gaps=st.lists(st.floats(min_value=0.0, max_value=0.004), min_size=2, max_size=30),
    jitter=st.floats(min_value=0.0, max_value=0.01),
)
def test_channel_is_fifo_under_arbitrary_jitter(seed, gaps, jitter):
    sim = Simulator(seed=seed)
    net = Network(
        sim, latency=LatencyModel(base=0.001, jitter=jitter, rng=sim.rng("net"))
    )
    client = net.register("c")
    server = net.register("s")
    received = []

    def server_proc():
        end = yield server.accept()
        for _ in range(len(gaps)):
            received.append((yield from end.recv()))

    def client_proc():
        channel = net.connect(client, "s")
        for i, gap in enumerate(gaps):
            channel.client_end.send(i)
            yield sim.sleep(gap)

    sim.spawn(server_proc(), name="server")
    sim.spawn(client_proc(), name="client")
    sim.run()
    assert received == list(range(len(gaps)))


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(min_value=1, max_value=20),
)
def test_duplex_streams_are_independent_fifo(seed, n):
    sim = Simulator(seed=seed)
    net = Network(
        sim, latency=LatencyModel(base=0.001, jitter=0.003, rng=sim.rng("net"))
    )
    client = net.register("c")
    server = net.register("s")
    got_client, got_server = [], []

    def server_proc():
        end = yield server.accept()
        for i in range(n):
            end.send(("s", i))
            got_server.append((yield from end.recv()))

    def client_proc():
        channel = net.connect(client, "s")
        for i in range(n):
            channel.client_end.send(("c", i))
            got_client.append((yield from channel.client_end.recv()))

    sim.spawn(server_proc(), name="server")
    sim.spawn(client_proc(), name="client")
    sim.run()
    assert got_server == [("c", i) for i in range(n)]
    assert got_client == [("s", i) for i in range(n)]
