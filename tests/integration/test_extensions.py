"""Extensions beyond the base protocol: load-aware discovery (§8) and
session consistency across failovers (§3's assignment rule)."""

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster


def make_cluster(n=3, seed=1, **config_kwargs):
    cluster = SIRepCluster(ClusterConfig(n_replicas=n, seed=seed, **config_kwargs))
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 4)])
    return cluster, Driver(cluster.network, cluster.discovery)


# -- load-aware discovery -------------------------------------------------------


def test_replica_at_session_cap_declines_discovery():
    cluster, driver = make_cluster()
    sim = cluster.sim
    # cap R0 at 1 session
    cluster.replicas[0].max_sessions = 1
    addresses = []

    def client(i):
        yield sim.sleep(i * 0.1)  # stagger so session counts are visible
        conn = yield from driver.connect(cluster.new_client_host())
        # a session only counts once it has spoken to the middleware
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        addresses.append(conn.address)
        yield sim.sleep(10.0)  # hold the session open

    for i in range(12):
        sim.spawn(client(i), name=f"c{i}")
    sim.run(until=5.0)
    assert addresses.count("R0") <= 1
    assert len(addresses) == 12  # everyone got served somewhere


def test_active_session_count_tracks_connections():
    cluster, driver = make_cluster()
    sim = cluster.sim
    replica = cluster.replicas[1]

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R1")
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        yield sim.sleep(1.0)
        conn.close()

    sim.spawn(client(), name="c")
    sim.run(until=0.5)
    assert replica.active_sessions == 1
    sim.run()
    sim.run(until=sim.now + 1.0)
    assert replica.active_sessions == 0


# -- session consistency across failover ------------------------------------------


def test_client_reads_own_writes_after_failover():
    """The client's last update must be visible on the replica it fails
    over to, even if that replica is applying writesets slowly."""
    from repro.storage.engine import CostModel

    class SlowApply(CostModel):
        def statement(self, kind, a, b, c):
            return (0.0, 0.0)

        def writeset_apply(self, n):
            return (1.0, 0.0)  # remote application takes a full second

        def commit(self, n):
            return (0.0, 0.0)

    cluster, driver = make_cluster(seed=2, cost_model=lambda _i: SlowApply())
    sim = cluster.sim
    observed = {}

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 77 WHERE k = 1")
        yield from conn.commit()  # commits at R0; remote applies take ~1s
        cluster.crash(0)
        # next statement fails over; without session consistency it could
        # read v=0 from a replica that has not applied the writeset yet
        result = yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        observed["value"] = result.rows[0]["v"]
        observed["waited_until"] = sim.now

    sim.spawn(client(), name="client")
    sim.run()
    sim.run(until=sim.now + 3.0)
    assert observed["value"] == 77
    # the read was delayed until the writeset applied (~1s in)
    assert observed["waited_until"] >= 0.9


def test_failover_after_readonly_txn_does_not_wait():
    cluster, driver = make_cluster(seed=3)
    sim = cluster.sim
    times = {}

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()  # read-only: not replicated
        cluster.crash(0)
        start = sim.now
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        times["latency"] = sim.now - start

    sim.spawn(client(), name="client")
    sim.run()
    assert times["latency"] < 0.1  # no session-consistency wait needed


def test_session_consistency_marker_cleared_after_one_statement():
    cluster, driver = make_cluster(seed=4)
    sim = cluster.sim

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        yield from conn.commit()
        cluster.crash(0)
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        assert conn._resync_gid is None  # consumed by the first statement
        yield from conn.commit()
        return True

    assert sim.run_process(client()) is True
