"""Soak test: long mixed run with crashes and recoveries, audited.

Twenty clients run a mixed read/write workload against a 4-replica
cluster while one replica crashes and later rejoins online.  At the end:

* every continuously-alive replica passed the 1-copy-SI audit,
* all alive replicas (including the recovered one) converged bytewise,
* throughput never stopped for longer than the failover window.
"""


from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.errors import DatabaseError
from repro.testing import query

N_ROWS = 12


def test_soak_with_crash_and_recovery():
    cluster = SIRepCluster(ClusterConfig(n_replicas=4, seed=99))
    sim = cluster.sim
    cluster.load_schema(
        ["CREATE TABLE kv (k INT PRIMARY KEY, v INT, writer TEXT)"]
    )
    cluster.bulk_load(
        "kv", [{"k": k, "v": 0, "writer": "init"} for k in range(1, N_ROWS + 1)]
    )
    driver = Driver(cluster.network, cluster.discovery)
    rng = sim.rng("soak")
    commits = []
    aborts = [0]

    def client(cid):
        conn = yield from driver.connect(cluster.new_client_host())
        for i in range(60):
            yield sim.sleep(0.02 + rng.random() * 0.06)
            try:
                if rng.random() < 0.35:
                    yield from conn.execute("SELECT k, v FROM kv ORDER BY k")
                    yield from conn.commit()
                else:
                    key = rng.randint(1, N_ROWS)
                    yield from conn.execute(
                        "UPDATE kv SET v = v + 1, writer = ? WHERE k = ?",
                        (f"c{cid}", key),
                    )
                    yield from conn.commit()
                commits.append(sim.now)
            except DatabaseError:
                aborts[0] += 1

    for cid in range(20):
        sim.spawn(client(cid), name=f"c{cid}")

    sim.call_at(1.0, lambda: cluster.crash(2))
    sim.call_at(2.5, lambda: cluster.recover_replica(2))
    sim.run()
    sim.run(until=sim.now + 6.0)

    assert len(commits) > 600
    # some conflict aborts are expected with 20 writers on 12 rows
    assert aborts[0] < len(commits)

    # 1-copy-SI over the continuously-alive replicas
    report = cluster.one_copy_report()
    assert report.ok, [str(v) for v in report.violations]

    # every alive replica (incl. the recovered one) converged
    states = {
        replica.name: tuple(
            (r["k"], r["v"], r["writer"])
            for r in query(
                sim, replica.node.db, "SELECT k, v, writer FROM kv ORDER BY k"
            )
        )
        for replica in cluster.alive_replicas()
    }
    assert len(states) == 4
    assert len(set(states.values())) == 1

    # commits kept flowing: largest gap bounded by the crash-detection
    # window plus a little slack
    gaps = [b - a for a, b in zip(commits, commits[1:])]
    assert max(gaps) < cluster.config.gcs.crash_detection + 0.5


def test_soak_pure_contention_no_faults():
    """High-contention run on a single hot row: exactly one winner per
    conflict window, monotone counter, full agreement."""
    cluster = SIRepCluster(ClusterConfig(n_replicas=3, seed=123))
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE hot (k INT PRIMARY KEY, n INT)"])
    cluster.bulk_load("hot", [{"k": 1, "n": 0}])
    driver = Driver(cluster.network, cluster.discovery)
    rng = sim.rng("hot")
    wins = [0]

    def incrementer(cid):
        conn = yield from driver.connect(cluster.new_client_host())
        for _ in range(40):
            yield sim.sleep(rng.random() * 0.01)
            try:
                yield from conn.execute("UPDATE hot SET n = n + 1 WHERE k = 1")
                yield from conn.commit()
                wins[0] += 1
            except DatabaseError:
                pass

    for cid in range(8):
        sim.spawn(incrementer(cid), name=f"inc{cid}")
    sim.run()
    sim.run(until=sim.now + 3.0)
    final = {
        query(sim, node.db, "SELECT n FROM hot WHERE k = 1")[0]["n"]
        for node in cluster.nodes
    }
    assert len(final) == 1
    # no lost updates: the counter equals the number of successful commits
    assert final.pop() == wins[0]
    assert cluster.one_copy_report().ok
