"""Tests for total order + uniform reliable multicast and membership."""

import pytest

from repro.errors import NotAMember
from repro.gcs import GcsConfig, GroupBus, Message, ViewChange
from repro.sim import Simulator


def build_group(n, seed=1, **config):
    sim = Simulator(seed=seed)
    bus = GroupBus(sim, config=GcsConfig(**config) if config else None)
    members = [bus.join(f"m{i}") for i in range(n)]
    return sim, bus, members


def drain(sim, member, count):
    """Collect `count` deliveries from a member inbox."""
    out = []

    def collector():
        for _ in range(count):
            item = yield member.deliver()
            out.append(item)

    sim.spawn(collector(), name=f"drain-{member.member_id}")
    return out


def payloads(items):
    return [it.payload for it in items if isinstance(it, Message)]


def test_join_announces_views_in_order():
    sim, bus, members = build_group(3)
    assert bus.members == ("m0", "m1", "m2")
    out = drain(sim, members[0], 1)  # m0 sees views 2 and 3 too, but at least its own join
    sim.run()
    assert isinstance(out[0], ViewChange)


def test_total_order_same_everywhere():
    sim, bus, members = build_group(3, seed=7, jitter=0.001)
    inboxes = []

    def sender(member, tag):
        for i in range(10):
            yield sim.sleep(0.0001)
            member.multicast(f"{tag}-{i}")

    for member, tag in zip(members, "abc"):
        sim.spawn(sender(member, tag), name=f"send-{tag}")
    for member in members:
        # 30 messages + the view changes this member observes
        views_seen = 3 - int(member.member_id[1])
        inboxes.append(drain(sim, member, 30 + views_seen))
    sim.run()
    sequences = [payloads(inbox) for inbox in inboxes]
    assert len(sequences[0]) == 30
    assert sequences[0] == sequences[1] == sequences[2]


def test_sender_delivers_its_own_messages():
    sim, bus, members = build_group(2)
    out = drain(sim, members[0], 3)  # 2 view changes + 1 message
    members[0].multicast("hello")
    sim.run()
    assert payloads(out) == ["hello"]


def test_seq_numbers_strictly_increase_per_member():
    sim, bus, members = build_group(3, seed=2)

    def sender():
        for i in range(20):
            yield sim.sleep(0.0001)
            members[i % 3].multicast(i)

    sim.spawn(sender(), name="sender")
    out = drain(sim, members[2], 20 + 1)
    sim.run()
    seqs = [item.seq for item in out]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_crashed_member_message_in_flight_is_lost_everywhere():
    """A message still on its way to the sequencer dies with its sender."""
    sim, bus, members = build_group(3, seed=4)
    out1 = drain(sim, members[1], 100)
    out2 = drain(sim, members[2], 100)

    def scenario():
        yield sim.sleep(1.0)
        members[0].multicast("doomed")
        bus.crash("m0")  # crash before sender->bus hop completes
        yield sim.sleep(2.0)

    sim.run_process(scenario())
    assert "doomed" not in payloads(out1)
    assert "doomed" not in payloads(out2)


def test_uniform_delivery_sequenced_message_reaches_all_survivors():
    """Once sequenced, a message is delivered to all survivors even if the
    sender crashes immediately afterwards — before their view change."""
    sim, bus, members = build_group(3, seed=4, crash_detection=0.5)
    out1 = drain(sim, members[1], 100)

    def scenario():
        yield sim.sleep(1.0)
        members[0].multicast("survives")
        yield sim.sleep(0.01)  # enough for sender->bus sequencing
        bus.crash("m0")
        yield sim.sleep(2.0)

    sim.run_process(scenario())
    items = [it for it in out1 if isinstance(it, (Message, ViewChange))]
    kinds = [
        it.payload if isinstance(it, Message) else "VIEW"
        for it in items
        if (isinstance(it, Message) and it.payload == "survives")
        or (isinstance(it, ViewChange) and "m0" in it.crashed)
    ]
    assert kinds == ["survives", "VIEW"]


def test_view_change_lists_crashed_member_and_new_membership():
    sim, bus, members = build_group(3)
    out1 = drain(sim, members[1], 10)

    def scenario():
        yield sim.sleep(1.0)
        bus.crash("m2")
        yield sim.sleep(2.0)

    sim.run_process(scenario())
    crash_views = [
        it for it in out1 if isinstance(it, ViewChange) and it.crashed == ("m2",)
    ]
    assert len(crash_views) == 1
    assert crash_views[0].members == ("m0", "m1")


def test_crash_detection_delay_applies():
    sim, bus, members = build_group(2, crash_detection=0.75)
    seen_at = {}

    def watcher():
        while True:
            item = yield members[0].deliver()
            if isinstance(item, ViewChange) and item.crashed:
                seen_at["t"] = sim.now
                return

    sim.spawn(watcher(), name="watcher")

    def scenario():
        yield sim.sleep(1.0)
        bus.crash("m1")
        yield sim.sleep(2.0)

    sim.run_process(scenario())
    assert seen_at["t"] >= 1.75


def test_messages_during_detection_window_deliver_before_view_change():
    sim, bus, members = build_group(3, seed=9, crash_detection=0.5)
    out1 = drain(sim, members[1], 100)

    def scenario():
        yield sim.sleep(1.0)
        bus.crash("m0")
        yield sim.sleep(0.1)  # inside the detection window
        members[2].multicast("window-msg")
        yield sim.sleep(2.0)

    sim.run_process(scenario())
    ordered = [
        ("msg" if isinstance(it, Message) else "view")
        for it in out1
        if (isinstance(it, Message) and it.payload == "window-msg")
        or (isinstance(it, ViewChange) and it.crashed)
    ]
    assert ordered == ["msg", "view"]


def test_crashed_member_cannot_multicast():
    sim, bus, members = build_group(2)
    bus.crash("m0")
    with pytest.raises(NotAMember):
        members[0].multicast("zombie")


def test_crashed_member_receives_nothing_more():
    sim, bus, members = build_group(2, seed=3)
    out0 = drain(sim, members[0], 100)

    def scenario():
        yield sim.sleep(1.0)
        bus.crash("m0")
        yield sim.sleep(0.1)
        members[1].multicast("after-crash")
        yield sim.sleep(1.0)

    sim.run_process(scenario())
    assert "after-crash" not in payloads(out0)


def test_multicast_latency_within_paper_envelope():
    """One uniform reliable multicast should cost <= 3 ms (paper §5.2)."""
    sim, bus, members = build_group(5, seed=6)
    stamp = {}

    def receiver():
        while True:
            item = yield members[4].deliver()
            if isinstance(item, Message):
                stamp["latency"] = sim.now - item.payload
                return

    sim.spawn(receiver(), name="receiver")

    def sender():
        yield sim.sleep(1.0)
        members[0].multicast(sim.now)

    sim.spawn(sender(), name="sender")
    sim.run()
    assert 0 < stamp["latency"] <= 0.003


def test_rejoin_after_crash_allowed():
    sim, bus, members = build_group(2)
    bus.crash("m1")
    rejoined = bus.join("m1")
    assert rejoined.alive
    assert "m1" in bus.members
