"""SELECT DISTINCT and LEFT [OUTER] JOIN."""

import pytest

from repro.errors import SQLError
from repro.sim import Simulator
from repro.sql.parser import parse
from repro.sql.render import render
from repro.storage import Database
from repro.testing import query, run_txn


@pytest.fixture
def env():
    sim = Simulator(seed=1)
    db = Database(sim, name="db")
    run_txn(
        sim, db,
        [
            ("CREATE TABLE person (id INT PRIMARY KEY, city TEXT)",),
            ("CREATE TABLE pet (pid INT PRIMARY KEY, owner INT, kind TEXT)",),
            ("CREATE INDEX i_owner ON pet (owner)",),
            (
                "INSERT INTO person (id, city) VALUES "
                "(1, 'rome'), (2, 'rome'), (3, 'oslo'), (4, 'lima')",
            ),
            (
                "INSERT INTO pet (pid, owner, kind) VALUES "
                "(10, 1, 'cat'), (11, 1, 'dog'), (12, 3, 'cat')",
            ),
        ],
    )
    return sim, db


def test_distinct_single_column(env):
    sim, db = env
    rows = query(sim, db, "SELECT DISTINCT city FROM person ORDER BY city")
    assert rows == [{"city": "lima"}, {"city": "oslo"}, {"city": "rome"}]


def test_distinct_multi_column_keeps_distinct_pairs(env):
    sim, db = env
    run_txn(sim, db, [("INSERT INTO person (id, city) VALUES (5, 'rome')",)])
    rows = query(
        sim, db, "SELECT DISTINCT city, id FROM person WHERE city = 'rome' ORDER BY id"
    )
    assert len(rows) == 3  # same city, different ids: all distinct pairs


def test_distinct_applies_before_limit(env):
    sim, db = env
    rows = query(sim, db, "SELECT DISTINCT city FROM person ORDER BY city LIMIT 2")
    assert rows == [{"city": "lima"}, {"city": "oslo"}]


def test_distinct_order_by_requires_output_column(env):
    sim, db = env
    with pytest.raises(SQLError, match="DISTINCT output"):
        query(sim, db, "SELECT DISTINCT city FROM person ORDER BY id")


def test_left_join_preserves_unmatched_outer_rows(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT p.id, q.kind FROM person p LEFT JOIN pet q ON p.id = q.owner "
        "ORDER BY p.id",
    )
    assert rows == [
        {"id": 1, "kind": "cat"},
        {"id": 1, "kind": "dog"},
        {"id": 2, "kind": None},
        {"id": 3, "kind": "cat"},
        {"id": 4, "kind": None},
    ]


def test_left_outer_join_keyword(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT p.id FROM person p LEFT OUTER JOIN pet q ON p.id = q.owner "
        "WHERE q.kind IS NULL ORDER BY p.id",
    )
    assert rows == [{"id": 2}, {"id": 4}]  # the anti-join idiom


def test_inner_join_still_drops_unmatched(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT p.id FROM person p JOIN pet q ON p.id = q.owner "
        "GROUP BY p.id ORDER BY p.id",
    )
    assert rows == [{"id": 1}, {"id": 3}]


def test_left_join_with_aggregate(env):
    sim, db = env
    rows = query(
        sim, db,
        "SELECT p.city, COUNT(q.pid) AS pets FROM person p "
        "LEFT JOIN pet q ON p.id = q.owner GROUP BY p.city ORDER BY p.city",
    )
    # COUNT(column) skips the NULLs from unmatched left rows
    assert rows == [
        {"city": "lima", "pets": 0},
        {"city": "oslo", "pets": 1},
        {"city": "rome", "pets": 2},
    ]


def test_parse_and_render_round_trip():
    for sql in (
        "SELECT DISTINCT a, b FROM t ORDER BY a LIMIT 3",
        "SELECT p.a FROM t p LEFT JOIN u q ON p.a = q.b WHERE q.b IS NULL",
    ):
        statement = parse(sql)
        assert parse(render(statement)) == statement


def test_distinct_flag_in_ast():
    assert parse("SELECT DISTINCT a FROM t").distinct
    assert not parse("SELECT a FROM t").distinct
    join = parse("SELECT a FROM t LEFT JOIN u ON t.a = u.b").joins[0]
    assert join.left_outer
