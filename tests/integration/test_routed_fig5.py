"""Fig. 5 rides the read tier by default — and keeps its sessions safe.

The TPC-W bench now drives a :class:`RoutedDriver` against lazy read
replicas.  One test pins the wiring (reads really leave the full
replicas), one pins the guarantee that makes the wiring correct
(read-your-writes via session tokens, even on a deliberately lagging
reader, with the contention knobs switched on as the bench uses them).
"""

from repro.bench import figures
from repro.client import RoutedDriver
from repro.core import ClusterConfig, SIRepCluster
from repro.gcs import GcsConfig
from repro.reader import ReaderConfig


def test_fig5_default_routes_reads_through_read_tier():
    points = figures.fig5_tpcw(fast=True, quiet=True)
    replicated = [p for p in points if p.system == "SRCA-Rep"]
    assert replicated
    for point in replicated:
        routing = point.extras["routing"]
        assert routing is not None, "fig5 no longer drives a RoutedDriver"
        assert routing["reads_routed"] > 0
    for point in points:
        if point.system == "centralized":
            assert point.extras.get("routing") is None


def test_fig5_opt_out_restores_in_place_reads():
    points = figures.fig5_tpcw(fast=True, quiet=True, read_replicas=0)
    for point in points:
        if point.system == "SRCA-Rep":
            assert point.extras["routing"] is None


def test_read_your_writes_survives_contention_knobs():
    """A session's own commit is visible through the routed read path —
    token-enforced — while salvage/reorder/adaptive windows are live and
    the chosen reader demonstrably lags the write."""
    cluster = SIRepCluster(
        ClusterConfig(
            n_replicas=3,
            seed=11,
            salvage=True,
            read_replicas=1,
            reader=ReaderConfig(apply_delay=0.05),
            gcs=GcsConfig(
                batch_max_messages=4,
                batch_window=0.002,
                reorder=True,
                adaptive_window=True,
                batch_window_min=0.0005,
                batch_window_max=0.01,
            ),
        )
    )
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": 1, "v": 0}])
    driver = RoutedDriver(
        cluster.network, cluster.discovery, reader_config=cluster.reader_config
    )
    seen = []

    def scenario():
        conn = yield from driver.connect(cluster.new_client_host())
        for value in (1, 2, 3):
            yield from conn.execute(
                "UPDATE kv SET v = ? WHERE k = ?", (value, 1)
            )
            yield from conn.commit()
            token = conn.session_csn
            assert token is not None and token >= value
            # apply_delay keeps the reader behind the fresh commit, so
            # only the session token can make this read correct
            result = yield from conn.execute(
                "SELECT v FROM kv WHERE k = 1", readonly=True
            )
            seen.append(result.rows[0]["v"])
            yield from conn.commit()
        conn.close()

    sim.run_process(scenario())
    sim.run()
    assert seen == [1, 2, 3]  # read-your-writes, every round
    assert driver.stats_reads_routed == 3
