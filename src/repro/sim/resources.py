"""Queueing service centres: the performance model's CPUs and disks.

A :class:`Resource` is a FIFO queue in front of ``servers`` identical
servers.  A process calls ``yield from resource.use(amount)`` to occupy one
server for ``amount`` virtual seconds.  Saturation of these resources is
what produces the response-time knees in Figures 5-7.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.sync import Event


class Resource:
    """FIFO multi-server service centre with utilization accounting."""

    def __init__(self, sim: Simulator, name: str, servers: int = 1):
        if servers < 1:
            raise SimulationError(f"resource {name!r} needs >= 1 server")
        self.sim = sim
        self.name = name
        self.servers = servers
        self._busy = 0
        self._queue: Deque[tuple[Event, float]] = deque()
        # Accounting
        self.total_service_time = 0.0
        self.jobs_served = 0
        self._accounting_start = sim.now

    # -- core protocol -------------------------------------------------------

    def use(self, amount: float) -> Generator[Any, Any, None]:
        """Occupy one server for ``amount`` seconds (FIFO admission)."""
        if amount < 0:
            raise SimulationError(f"negative service demand: {amount}")
        if self._busy >= self.servers:
            granted = Event()
            self._queue.append((granted, amount))
            yield granted.wait()
        else:
            self._busy += 1
        try:
            yield self.sim.sleep(amount)
        finally:
            self.total_service_time += amount
            self.jobs_served += 1
            self._release()

    def _release(self) -> None:
        if self._queue:
            granted, _amount = self._queue.popleft()
            granted.set(None)
        else:
            self._busy -= 1

    # -- metrics ---------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self) -> float:
        """Mean fraction of server capacity busy since accounting start."""
        elapsed = self.sim.now - self._accounting_start
        if elapsed <= 0:
            return 0.0
        return self.total_service_time / (elapsed * self.servers)

    def reset_accounting(self) -> None:
        """Restart utilization statistics (used after warm-up periods)."""
        self.total_service_time = 0.0
        self.jobs_served = 0
        self._accounting_start = self.sim.now
