"""Unit tests for the segmented writeset log (repro.durable.log)."""

import pytest

from repro.durable import LogRecord, WritesetLog
from repro.storage.writeset import WriteOp


def ws(seq, key=1):
    return LogRecord.ws(
        seq, f"R0:g{seq}", seq, "R0",
        (WriteOp("kv", key, "update", {"k": key, "v": seq}),),
    )


def charge_free(seconds):
    """Zero-cost charge generator for tests without a simulator."""
    return
    yield  # pragma: no cover


def drain(gen):
    """Run a charge-generator-driven flush to completion, return value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def test_append_assigns_contiguous_sequences():
    log = WritesetLog("R0")
    log.append(ws(1))
    log.append(ws(2))
    assert log.tip_seq == 2
    assert log.durable_seq == 0  # nothing flushed yet
    with pytest.raises(AssertionError):
        log.append(ws(4))  # gap


def test_flush_moves_tail_to_segments_with_one_charge_per_group():
    log = WritesetLog("R0")
    charges = []

    def charge(seconds):
        charges.append(seconds)
        return
        yield

    for seq in range(1, 6):
        log.append(ws(seq))
    flushed = drain(log.flush(charge))
    assert flushed == 5
    assert log.durable_seq == 5
    assert log.tail == []
    assert len(charges) == 1  # group commit: one fsync for the batch
    assert charges[0] > log.fsync_time  # fsync + per-byte cost


def test_records_after_returns_suffix_across_segments_and_tail():
    log = WritesetLog("R0", segment_records=2)
    for seq in range(1, 6):
        log.append(ws(seq))
    drain(log.flush(charge_free))
    log.append(ws(6))  # still in the tail
    suffix = log.records_after(3)
    assert [r.seq for r in suffix] == [4, 5, 6]
    assert [r.seq for r in log.records_after(0)] == [1, 2, 3, 4, 5, 6]


def test_truncate_drops_only_whole_sealed_segments():
    log = WritesetLog("R0", segment_records=2)
    for seq in range(1, 8):
        log.append(ws(seq))
    drain(log.flush(charge_free))
    # segments: [1,2] [3,4] [5,6] sealed, [7] active
    dropped = log.truncate_to(5)  # 5 splits the [5,6] segment: keep it
    assert dropped == 4
    assert log.start_seq == 5
    assert log.can_serve_from(4)
    assert not log.can_serve_from(3)
    with pytest.raises(AssertionError):
        log.records_after(2)  # truncated away
    # active (unsealed) segment never goes, even if fully covered
    assert log.truncate_to(100) == 2  # only [5,6]


def test_drop_tail_loses_unflushed_records_only():
    log = WritesetLog("R0")
    log.append(ws(1))
    drain(log.flush(charge_free))
    log.append(ws(2))
    log.append(ws(3))
    lost = log.drop_tail()
    assert lost == 2
    assert log.tip_seq == log.durable_seq == 1
    # the log accepts seq 2 again (a new incarnation re-certifies it)
    log.append(ws(2))
    assert log.tip_seq == 2


def test_rebase_discards_prefix_and_realigns():
    log = WritesetLog("R0")
    for seq in range(1, 4):
        log.append(ws(seq))
    drain(log.flush(charge_free))
    log.rebase(10)
    assert log.tip_seq == log.durable_seq == 10
    assert log.rebased_at == 10
    assert not log.can_serve_from(5)
    log.append(ws(11))
    assert log.tip_seq == 11


def test_append_durable_writes_through_without_a_flush():
    log = WritesetLog("R0")
    log.append_durable(LogRecord.ddl(1, "CREATE TABLE t (id INT PRIMARY KEY)"))
    log.append_durable(LogRecord.load(2, "t", [{"id": 1}]))
    assert log.durable_seq == 2
    assert log.tail == []
    log.append(ws(3))
    with pytest.raises(AssertionError):
        log.append_durable(ws(4))  # write-through behind a tail is a bug


def test_disk_backed_log_round_trips(tmp_path):
    log = WritesetLog("R0", segment_records=2, directory=tmp_path / "R0")
    log.append_durable(LogRecord.ddl(1, "CREATE TABLE kv (k INT PRIMARY KEY)"))
    for seq in range(2, 6):
        log.append(ws(seq))
    drain(log.flush(charge_free))
    reloaded = WritesetLog("R0", segment_records=2, directory=tmp_path / "R0")
    assert reloaded.durable_seq == 5
    assert [r.seq for r in reloaded.records_after(0)] == [1, 2, 3, 4, 5]
    assert reloaded.records_after(0)[0].sql.startswith("CREATE TABLE kv")
    ops = reloaded.records_after(1)[0].ops
    assert ops[0].key == ("kv", 1)


def test_disk_backed_truncation_unlinks_segment_files(tmp_path):
    log = WritesetLog("R0", segment_records=2, directory=tmp_path / "R0")
    for seq in range(1, 6):
        log.append(ws(seq))
    drain(log.flush(charge_free))
    files_before = sorted(p.name for p in (tmp_path / "R0").glob("seg-*.jsonl"))
    assert len(files_before) == 3
    log.truncate_to(4)
    files_after = sorted(p.name for p in (tmp_path / "R0").glob("seg-*.jsonl"))
    assert len(files_after) == 1
    reloaded = WritesetLog("R0", segment_records=2, directory=tmp_path / "R0")
    assert reloaded.start_seq == 5


def test_record_json_round_trip():
    record = ws(7, key=3)
    again = LogRecord.from_json(record.to_json())
    assert again == record
    ddl = LogRecord.ddl(1, "CREATE TABLE t (id INT PRIMARY KEY)")
    assert LogRecord.from_json(ddl.to_json()) == ddl
    load = LogRecord.load(2, "t", [{"id": 1, "v": "x"}])
    assert LogRecord.from_json(load.to_json()) == load
