"""Checkpoints: storage-engine snapshots that bound log replay.

A checkpoint captures, atomically, everything a replica needs to resume
from log position ``seq`` without replaying the records at or below it:
the committed row images at that point, the DDL already applied, and the
certifier decision state.  ``applied_beyond`` lists records *above*
``seq`` whose writesets are already installed (the replica applies
certified writesets out of log order when they don't conflict), so
replay after restore can skip re-installing them; ``cert_seq`` is the
log tip at capture time — every record at or below it has already gone
through the certifier whose state the checkpoint carries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class Checkpoint:
    """An atomic snapshot of one replica at applied-log-prefix ``seq``."""

    seq: int  # contiguous applied prefix of the log
    cert_seq: int  # log tip at capture: records <= this are certified
    applied_beyond: tuple  # seqs > seq already installed (out of order)
    csn: int  # storage engine commit sequence number
    ddl: tuple  # CREATE statements applied, in order
    rows: dict  # table -> list of latest committed row dicts
    cert_tid: int  # certifier.last_validated_tid
    cert_last_writer: dict  # (table, pk) -> tid
    outcomes: dict  # gid -> committed/aborted (in-doubt inquiries)
    nbytes: int
    #: certified-feed position at capture (replicated records only), so a
    #: restored incarnation keeps publishing at read-tier-aligned seqs
    feed_seq: int = 0
    #: certifier tombstones ((table, pk) whose last certified write was a
    #: DELETE) — restored so future salvage decisions stay deterministic
    #: across the checkpoint boundary
    cert_deleted: tuple = ()
    #: certifier window-GC truncation point at capture:
    #: ``cert_last_writer`` carries no entries with tid <= this, and a
    #: restore must carry it so the rebuilt certifier's conservative
    #: floor guard matches the capturing replica's
    cert_floor: int = 0

    @classmethod
    def capture(cls, *, seq: int, cert_seq: int, applied_beyond, csn: int,
                ddl, rows: dict, certifier, outcomes: dict,
                feed_seq: int = 0) -> "Checkpoint":
        rows = {table: [dict(r) for r in rs] for table, rs in rows.items()}
        nbytes = len(json.dumps({
            "seq": seq, "csn": csn, "ddl": list(ddl),
            "rows": rows, "tid": certifier.last_validated_tid,
        }))
        return cls(
            seq=seq,
            cert_seq=cert_seq,
            applied_beyond=tuple(sorted(applied_beyond)),
            csn=csn,
            ddl=tuple(ddl),
            rows=rows,
            cert_tid=certifier.last_validated_tid,
            cert_last_writer=dict(certifier._last_writer),
            outcomes=dict(outcomes),
            nbytes=nbytes,
            feed_seq=feed_seq,
            cert_deleted=tuple(
                sorted(getattr(certifier, "_deleted", ()), key=repr)
            ),
            cert_floor=getattr(certifier, "floor", 0),
        )

    def to_json(self) -> dict:
        return {
            "seq": self.seq,
            "cert_seq": self.cert_seq,
            "applied_beyond": list(self.applied_beyond),
            "csn": self.csn,
            "ddl": list(self.ddl),
            "rows": self.rows,
            "cert_tid": self.cert_tid,
            # (table, pk) tuple keys flattened for JSON
            "cert_last_writer": [
                [table, pk, tid]
                for (table, pk), tid in self.cert_last_writer.items()
            ],
            "outcomes": self.outcomes,
            "nbytes": self.nbytes,
            "feed_seq": self.feed_seq,
            "cert_deleted": [[table, pk] for table, pk in self.cert_deleted],
            "cert_floor": self.cert_floor,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Checkpoint":
        return cls(
            seq=data["seq"],
            cert_seq=data["cert_seq"],
            applied_beyond=tuple(data["applied_beyond"]),
            csn=data["csn"],
            ddl=tuple(data["ddl"]),
            rows=data["rows"],
            cert_tid=data["cert_tid"],
            cert_last_writer={
                (table, pk): tid
                for table, pk, tid in data["cert_last_writer"]
            },
            outcomes=dict(data["outcomes"]),
            nbytes=data["nbytes"],
            feed_seq=data.get("feed_seq", 0),
            cert_deleted=tuple(
                (table, pk) for table, pk in data.get("cert_deleted", ())
            ),
            cert_floor=data.get("cert_floor", 0),
        )


class CheckpointStore:
    """Retains the last ``keep`` checkpoints for one replica name.

    Like the log, the store outlives replica incarnations (in-memory) and
    optionally persists each checkpoint as ``ckpt-<seq>.json`` on disk so
    cold restart can start from the newest one instead of sequence 1.
    """

    def __init__(self, name: str, keep: int = 2,
                 directory: Optional[Path] = None):
        self.name = name
        self.keep = max(1, keep)
        self.directory = Path(directory) if directory is not None else None
        self.checkpoints: list[Checkpoint] = []
        self.saved = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            for path in sorted(self.directory.glob("ckpt-*.json")):
                self.checkpoints.append(
                    Checkpoint.from_json(json.loads(path.read_text()))
                )
            self.checkpoints.sort(key=lambda cp: cp.seq)

    def save(self, checkpoint: Checkpoint) -> None:
        if self.checkpoints and checkpoint.seq <= self.checkpoints[-1].seq:
            return  # no progress since the last one
        self.checkpoints.append(checkpoint)
        self.saved += 1
        if self.directory is not None:
            path = self.directory / f"ckpt-{checkpoint.seq:08d}.json"
            path.write_text(json.dumps(checkpoint.to_json()))
        while len(self.checkpoints) > self.keep:
            old = self.checkpoints.pop(0)
            if self.directory is not None:
                try:
                    (self.directory / f"ckpt-{old.seq:08d}.json").unlink()
                except FileNotFoundError:
                    pass

    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None
