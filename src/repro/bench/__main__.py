"""CLI: ``python -m repro.bench <fig5|fig6|fig7|claims|all> [--fast]``."""

from __future__ import annotations

import argparse
import sys

from repro.bench import figures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures as tables.",
    )
    parser.add_argument(
        "target",
        choices=["fig5", "fig6", "fig7", "claims", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="short sweep/horizon (shapes only, not CI-quality)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the measured points as JSON (for plotting)",
    )
    args = parser.parse_args(argv)
    collected: dict = {}
    if args.target in ("fig5", "all"):
        collected["fig5"] = figures.fig5_tpcw(fast=args.fast)
        print()
    if args.target in ("fig6", "all"):
        collected["fig6"] = figures.fig6_largedb(fast=args.fast)
        print()
    if args.target in ("fig7", "all"):
        collected["fig7"] = figures.fig7_update_intensive(fast=args.fast)
        print()
    if args.target in ("claims", "all"):
        collected["claims"] = figures.claims(fast=args.fast)
    if args.json:
        import dataclasses
        import json

        def to_plain(value):
            if dataclasses.is_dataclass(value):
                return dataclasses.asdict(value)
            if isinstance(value, list):
                return [to_plain(v) for v in value]
            return value

        with open(args.json, "w") as handle:
            json.dump(
                {key: to_plain(value) for key, value in collected.items()},
                handle,
                indent=2,
                default=str,
            )
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
