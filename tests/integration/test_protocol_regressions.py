"""Regressions for the failure-path protocol fixes.

Covers: a failed InquireReq must be answered with an InquireResp (not a
RollbackResp, which derails the driver's §5.4 in-doubt resolution);
finished session processes must be reaped; and bench-harness output must
be strict JSON end to end.
"""

import json

import pytest

from repro.bench.harness import run_sirep
from repro.client import Driver
from repro.core import ClusterConfig, MiddlewareReplica, SIRepCluster
from repro.core import protocol
from repro.errors import DatabaseError
from repro.workloads.micro import make_mixed_workload


def make_cluster(n=3, seed=1, **kwargs):
    cluster = SIRepCluster(ClusterConfig(n_replicas=n, seed=seed, **kwargs))
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 5)])
    return cluster, Driver(cluster.network, cluster.discovery)


# -- a failed inquiry answers with an InquireResp carrying the error -----------


def test_error_response_answers_inquire_with_inquire_resp():
    request = protocol.InquireReq(9, "gid-1", "R0")
    response = MiddlewareReplica._error_response(
        None, request, RuntimeError("boom")
    )
    assert isinstance(response, protocol.InquireResp)
    assert response.seq == 9
    assert response.error == ("RuntimeError", "boom")


def test_failed_inquiry_surfaces_the_error_to_the_driver():
    """Crash during commit, then fault the survivors' inquiry handler:
    the driver must receive the marshalled error through a well-formed
    InquireResp — before the fix it got a RollbackResp and broke on a
    response without ``outcome``/``error`` fields."""
    cluster, driver = make_cluster()
    sim = cluster.sim
    log = {}

    def failing_inquire(gid, crashed):
        raise RuntimeError("inquiry fault")
        yield  # pragma: no cover - generator marker

    for replica in cluster.replicas[1:]:
        replica._inquire = failing_inquire

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        # crash the serving replica the instant the commit is sent: the
        # driver fails over and inquires on a (faulted) survivor
        sim.call_at(sim.now, lambda: cluster.crash(0))
        with pytest.raises(DatabaseError, match="inquiry fault"):
            yield from conn.commit()
        log["done"] = True

    sim.spawn(client(), name="client")
    sim.run()
    assert log.get("done")


# -- finished session processes are reaped -------------------------------------


def test_session_processes_are_reaped_under_churn():
    cluster, driver = make_cluster(n=2, seed=5)
    sim = cluster.sim
    replica = cluster.replicas[0]
    baseline = len(replica._processes)  # the deliver + accept daemons
    rounds = 40
    log = {}

    def churn():
        for _ in range(rounds):
            conn = yield from driver.connect(
                cluster.new_client_host(), address="R0"
            )
            yield from conn.execute("SELECT v FROM kv WHERE k = 1")
            yield from conn.commit()
            conn.close()
            yield sim.sleep(0.05)
        log["done"] = True

    sim.spawn(churn(), name="churn")
    sim.run()
    assert log["done"]
    assert replica.stats_readonly_commits == rounds
    # every session was tracked, but the handles of finished ones were
    # reaped along the way instead of accumulating one per connection
    assert len(replica._processes) <= baseline + 2
    assert replica.active_sessions == 0


# -- bench-harness output is strict JSON end to end ----------------------------


def test_harness_output_round_trips_as_strict_json(tmp_path):
    point = run_sirep(
        make_mixed_workload(read_weight=0.3),
        40.0,
        n_replicas=3,
        duration=1.5,
        warmup=0.3,
        seed=2,
        obs=True,
        sampler_interval=0.1,
        trace=True,
    )
    path = tmp_path / "point.json"
    blob = {
        "throughput": point.throughput,
        "mean_rt_ms": point.mean_rt_ms,
        "extras": point.extras,
    }
    path.write_text(json.dumps(blob, allow_nan=False))  # NaN would raise here
    loaded = json.loads(path.read_text())
    metrics = loaded["extras"]["metrics"]
    assert metrics["trace"]["n"] > 0
    assert "commit_queue_p95" in metrics["trace"]
    assert len(metrics["obs"]["series"]) >= 5
    assert "R0.tocommit_depth" in metrics["obs"]["series"][0]
