"""Driver edge paths: rollback across a crash, autocommit failure, and
report string rendering."""

import pytest

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.errors import TransactionAborted
from repro.si import Schedule, TxnSpec, check_one_copy_si


def make_cluster(n=3, seed=1):
    cluster = SIRepCluster(ClusterConfig(n_replicas=n, seed=seed))
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": 1, "v": 0}])
    return cluster, Driver(cluster.network, cluster.discovery)


def test_rollback_during_crash_reconnects_silently():
    cluster, driver = make_cluster()
    sim = cluster.sim

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 1 WHERE k = 1")
        cluster.crash(0)
        # rollback of a transaction that died with its replica: no error,
        # the connection is re-established
        yield from conn.rollback()
        assert not conn.in_transaction
        result = yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        return result.rows, conn.address

    rows, address = sim.run_process(client())
    assert rows == [{"v": 0}]
    assert address != "R0"


def test_autocommit_conflict_surfaces_as_exception():
    cluster, driver = make_cluster(seed=2)
    sim = cluster.sim
    outcomes = []

    def client(address):
        conn = yield from driver.connect(cluster.new_client_host(), address=address)
        conn.autocommit = True
        try:
            yield from conn.execute("UPDATE kv SET v = v + 1 WHERE k = 1")
            outcomes.append("ok")
        except TransactionAborted:
            outcomes.append("aborted")

    sim.spawn(client("R0"), name="a")
    sim.spawn(client("R1"), name="b")
    sim.run()
    assert sorted(outcomes) == ["aborted", "ok"]


def test_one_copy_report_str_rendering():
    t1 = TxnSpec("1", frozenset(), frozenset({"x"}))
    t2 = TxnSpec("2", frozenset(), frozenset({"x"}))
    ok = check_one_copy_si(
        {"R": Schedule.from_string("b1 c1 b2 c2", [t1, t2])},
        locality={"1": "R", "2": "R"},
    )
    assert "OK" in str(ok)
    assert "witness" in str(ok)
    bad = check_one_copy_si(
        {
            "R1": Schedule.from_string("b1 c1 b2 c2", [t1, t2]),
            "R2": Schedule.from_string("b2 c2 b1 c1", [t1, t2]),
        },
        locality={"1": "R1", "2": "R2"},
    )
    assert "VIOLATED" in str(bad)


def test_kill_inside_resource_releases_server():
    from repro.sim import Resource, Simulator

    sim = Simulator()
    cpu = Resource(sim, "cpu", servers=1)
    done = []

    def holder():
        yield from cpu.use(100.0)

    def waiter():
        yield from cpu.use(1.0)
        done.append(sim.now)

    victim = sim.spawn(holder(), name="holder")
    sim.spawn(waiter(), name="waiter")
    sim.run(until=1.0)
    victim.kill()  # finally clause releases the server
    sim.run()
    assert done and done[0] == pytest.approx(2.0)
