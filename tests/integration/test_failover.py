"""Transparent failover per paper §5.4 — all four connection-state cases.

Timing notes: the client->middleware hop is ~0.3 ms, the sender->bus GCS
hop ~1 ms.  Crashing the serving replica immediately after a commit
request leaves the writeset un-sequenced (case 3a); crashing ~50 ms later
sequences it first (case 3b).
"""

import pytest

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.errors import (
    ConnectionLost,
    NoReplicaAvailable,
    TransactionOutcomeUnknownAborted,
)
from repro.testing import query


def make_cluster(n=3, seed=1):
    cluster = SIRepCluster(ClusterConfig(n_replicas=n, seed=seed))
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 5)])
    return cluster, Driver(cluster.network, cluster.discovery)


def settle(cluster, seconds=3.0):
    cluster.sim.run(until=cluster.sim.now + seconds)


def test_case1_idle_crash_is_fully_transparent():
    cluster, driver = make_cluster()
    sim = cluster.sim
    log = {}

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        # idle now; the serving replica crashes
        yield sim.sleep(1.0)
        result = yield from conn.execute("SELECT v FROM kv WHERE k = 1")
        yield from conn.commit()
        log["rows"] = result.rows
        log["address"] = conn.address
        log["failovers"] = conn.failovers

    sim.call_at(0.5, lambda: cluster.crash(0))
    sim.spawn(client(), name="client")
    sim.run()
    assert log["rows"] == [{"v": 0}]
    assert log["address"] != "R0"
    assert log["failovers"] == 1


def test_case2_active_transaction_lost_connection_survives():
    cluster, driver = make_cluster()
    sim = cluster.sim
    log = {}

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        yield sim.sleep(1.0)  # crash hits while the txn is open
        with pytest.raises(ConnectionLost):
            yield from conn.execute("UPDATE kv SET v = 6 WHERE k = 2")
        # the connection is NOT closed: restart the transaction
        yield from conn.execute("UPDATE kv SET v = 7 WHERE k = 1")
        yield from conn.commit()
        log["done"] = True

    sim.call_at(0.5, lambda: cluster.crash(0))
    sim.spawn(client(), name="client")
    sim.run()
    settle(cluster)
    assert log["done"]
    # the first (lost) update never committed anywhere; the retry did
    for replica in cluster.alive_replicas():
        assert query(sim, replica.node.db, "SELECT v FROM kv WHERE k = 1") == [
            {"v": 7}
        ]
        assert query(sim, replica.node.db, "SELECT v FROM kv WHERE k = 2") == [
            {"v": 0}
        ]


def test_case3a_commit_in_flight_writeset_lost():
    """Crash before the writeset reaches the sequencer: every survivor
    eventually answers 'aborted' (after the view change confirms the
    crash), and the update is nowhere."""
    cluster, driver = make_cluster()
    sim = cluster.sim
    log = {}

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        # crash the instant the commit request is sent: the middleware
        # never gets to multicast (or the multicast dies in flight)
        sim.call_at(sim.now, lambda: cluster.crash(0))
        with pytest.raises(TransactionOutcomeUnknownAborted):
            yield from conn.commit()
        log["answered_at"] = sim.now
        log["failovers"] = conn.failovers

    sim.spawn(client(), name="client")
    sim.run()
    settle(cluster)
    # the answer had to wait for the failure detector's view change
    assert log["answered_at"] >= cluster.config.gcs.crash_detection
    assert log["failovers"] >= 1
    for replica in cluster.alive_replicas():
        assert query(sim, replica.node.db, "SELECT v FROM kv WHERE k = 1") == [
            {"v": 0}
        ]


def test_case3b_commit_in_flight_writeset_delivered():
    """Crash after the writeset was sequenced: survivors commit it, the
    in-doubt inquiry returns 'committed', and the client sees a
    transparent successful commit."""
    cluster, driver = make_cluster()
    sim = cluster.sim
    log = {}

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        # crash ~50 ms after the commit request: the multicast has been
        # sequenced but the client may not have its response yet
        sim.call_at(sim.now + 0.05, lambda: cluster.crash(0))
        yield from conn.commit()  # must succeed (transparently or not)
        log["committed"] = True

    sim.spawn(client(), name="client")
    sim.run()
    settle(cluster)
    assert log["committed"]
    for replica in cluster.alive_replicas():
        assert query(sim, replica.node.db, "SELECT v FROM kv WHERE k = 1") == [
            {"v": 5}
        ]
    assert cluster.one_copy_report().ok


def test_case3b_with_response_lost_uses_inquiry():
    """Force the crash into the window after sequencing but before the
    commit response reaches the client: the driver must fail over and
    resolve the in-doubt transaction as committed."""
    cluster, driver = make_cluster(seed=2)
    sim = cluster.sim
    log = {}
    # Slow down writeset application so the commit response is pending
    # long enough for the crash to land in the window.
    from repro.storage.engine import CostModel

    class SlowApply(CostModel):
        def statement(self, kind, a, b, c):
            return (0.0, 0.0)

        def writeset_apply(self, n):
            return (0.2, 0.0)

        def commit(self, n):
            return (0.2, 0.0)

    for node in cluster.nodes:
        node.db.cost_model = SlowApply()
        node.db.cpu = node.cpu

    def client():
        conn = yield from driver.connect(cluster.new_client_host(), address="R0")
        yield from conn.execute("UPDATE kv SET v = 5 WHERE k = 1")
        sim.call_at(sim.now + 0.1, lambda: cluster.crash(0))  # mid-commit
        yield from conn.commit()
        log["committed"] = True
        log["failovers"] = conn.failovers

    sim.spawn(client(), name="client")
    sim.run()
    settle(cluster, 5.0)
    assert log["committed"]
    assert log["failovers"] == 1  # response was lost; inquiry resolved it
    for replica in cluster.alive_replicas():
        assert query(sim, replica.node.db, "SELECT v FROM kv WHERE k = 1") == [
            {"v": 5}
        ]


def test_cluster_survives_crash_under_load_and_stays_consistent():
    cluster, driver = make_cluster(n=3, seed=3)
    sim = cluster.sim
    rng = sim.rng("load")
    stats = {"committed": 0, "lost": 0}

    def client(cid):
        conn = yield from driver.connect(cluster.new_client_host())
        for i in range(15):
            yield sim.sleep(0.05 + rng.random() * 0.05)
            try:
                yield from conn.execute(
                    "UPDATE kv SET v = ? WHERE k = ?", (cid * 100 + i, rng.randint(1, 4))
                )
                yield from conn.commit()
                stats["committed"] += 1
            except Exception:
                stats["lost"] += 1

    for cid in range(4):
        sim.spawn(client(cid), name=f"client{cid}")
    sim.call_at(0.4, lambda: cluster.crash(1))
    sim.run()
    settle(cluster, 5.0)
    assert stats["committed"] > 10
    report = cluster.one_copy_report()
    assert report.ok, [str(v) for v in report.violations]
    survivors = cluster.alive_replicas()
    states = [
        tuple(
            (r["k"], r["v"])
            for r in query(sim, rep.node.db, "SELECT k, v FROM kv ORDER BY k")
        )
        for rep in survivors
    ]
    assert len(set(states)) == 1


def test_no_replica_available():
    cluster, driver = make_cluster(n=2, seed=4)
    sim = cluster.sim
    cluster.crash(0)
    cluster.crash(1)

    def client():
        with pytest.raises(NoReplicaAvailable):
            yield from driver.connect(cluster.new_client_host())
        return True

    assert sim.run_process(client()) is True
