"""Unit tests for version chains and snapshot visibility."""

import pytest

from repro.storage.versions import Version, VersionChain


def chain_with(*specs):
    chain = VersionChain()
    for csn, values in specs:
        chain.install(Version(csn, values))
    return chain


def test_empty_chain_invisible():
    chain = VersionChain()
    assert chain.visible(100) is None
    assert chain.latest() is None
    assert chain.visible_values(100) is None


def test_visibility_respects_snapshot():
    chain = chain_with((1, {"v": "a"}), (5, {"v": "b"}), (9, {"v": "c"}))
    assert chain.visible_values(0) is None
    assert chain.visible_values(1) == {"v": "a"}
    assert chain.visible_values(4) == {"v": "a"}
    assert chain.visible_values(5) == {"v": "b"}
    assert chain.visible_values(8) == {"v": "b"}
    assert chain.visible_values(9) == {"v": "c"}
    assert chain.visible_values(1000) == {"v": "c"}


def test_tombstone_hides_row():
    chain = chain_with((1, {"v": "a"}), (3, None))
    assert chain.visible_values(2) == {"v": "a"}
    assert chain.visible_values(3) is None
    assert chain.visible(3).is_delete


def test_reinsert_after_delete():
    chain = chain_with((1, {"v": "a"}), (3, None), (7, {"v": "b"}))
    assert chain.visible_values(3) is None
    assert chain.visible_values(7) == {"v": "b"}


def test_latest_ignores_snapshot():
    chain = chain_with((1, {"v": "a"}), (5, {"v": "b"}))
    assert chain.latest().csn == 5


def test_non_monotonic_install_rejected():
    chain = chain_with((5, {"v": "a"}))
    with pytest.raises(AssertionError):
        chain.install(Version(5, {"v": "b"}))
    with pytest.raises(AssertionError):
        chain.install(Version(3, {"v": "b"}))


def test_len_counts_versions():
    chain = chain_with((1, {"v": "a"}), (2, None), (3, {"v": "c"}))
    assert len(chain) == 3
