"""Row-level exclusive locks with deadlock detection.

Models PostgreSQL's write-path behaviour as described in paper §4: a
writer takes an exclusive lock per row; waiters queue FIFO behind the
holder; the lock manager maintains a waits-for graph and aborts the
*requester* when its request would close a cycle (the database "detects
such deadlock and aborts any of the transactions").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Hashable, Optional

from repro.errors import DeadlockDetected
from repro.sim import Event


class _Lock:
    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: Optional[Any] = None
        self.waiters: deque[tuple[Any, Event]] = deque()


class LockManager:
    """Exclusive locks keyed by arbitrary hashables ((table, pk) rows,
    or table names for the §7 baseline's table-level protocol)."""

    def __init__(self, name: str = "locks"):
        self.name = name
        self._locks: dict[Hashable, _Lock] = {}
        #: txn -> key it is currently waiting for (one at a time)
        self._waiting_for_key: dict[Any, Hashable] = {}
        self.deadlocks_detected = 0

    # -- introspection ------------------------------------------------------

    def holder(self, key: Hashable) -> Optional[Any]:
        lock = self._locks.get(key)
        return lock.holder if lock else None

    def holds(self, owner: Any, key: Hashable) -> bool:
        return self.holder(key) is owner

    def _blockers(self, txn: Any) -> list[Any]:
        """Transactions ``txn`` currently waits behind (holder + earlier
        waiters of the key it's blocked on)."""
        key = self._waiting_for_key.get(txn)
        if key is None:
            return []
        lock = self._locks[key]
        blockers = []
        if lock.holder is not None:
            blockers.append(lock.holder)
        for waiter, _event in lock.waiters:
            if waiter is txn:
                break
            blockers.append(waiter)
        return blockers

    def _would_deadlock(self, requester: Any, key: Hashable) -> bool:
        """DFS over the waits-for graph assuming requester waits on key."""
        lock = self._locks[key]
        start = [lock.holder] + [w for w, _e in lock.waiters]
        seen = set()
        stack = [t for t in start if t is not None]
        while stack:
            txn = stack.pop()
            if txn is requester:
                return True
            if id(txn) in seen:
                continue
            seen.add(id(txn))
            stack.extend(self._blockers(txn))
        return False

    # -- acquire / release ---------------------------------------------------

    def acquire(self, txn: Any, key: Hashable) -> Generator[Any, Any, None]:
        """Take the exclusive lock on ``key`` for ``txn`` (reentrant).

        Blocks while another transaction holds it.  Raises
        :class:`DeadlockDetected` if waiting would close a cycle.
        """
        lock = self._locks.get(key)
        if lock is None:
            lock = _Lock()
            self._locks[key] = lock
        if lock.holder is None:
            lock.holder = txn
            return
        if lock.holder is txn:
            return
        if self._would_deadlock(txn, key):
            self.deadlocks_detected += 1
            raise DeadlockDetected(
                f"{self.name}: {txn!r} waiting on {key!r} would deadlock"
            )
        granted = Event()
        lock.waiters.append((txn, granted))
        self._waiting_for_key[txn] = key
        try:
            yield granted.wait()
        finally:
            self._waiting_for_key.pop(txn, None)

    def release_all(self, txn: Any) -> list[Hashable]:
        """Drop every lock ``txn`` holds, granting to next waiters FIFO.

        If ``txn`` is itself *waiting* on some lock (it was aborted
        externally — e.g. a kernel killing a backend), its pending
        request is cancelled and the blocked process is woken with
        :class:`DeadlockDetected`-style failure so it can observe the
        abort.  Returns the released keys.
        """
        from repro.errors import TransactionAborted

        released = []
        for key, lock in list(self._locks.items()):
            if lock.holder is txn:
                released.append(key)
                self._grant_next(key, lock)
            else:
                remaining = deque()
                for waiter, event in lock.waiters:
                    if waiter is txn:
                        self._waiting_for_key.pop(txn, None)
                        event.throw(
                            TransactionAborted(
                                f"{self.name}: lock wait on {key!r} cancelled "
                                "(transaction aborted externally)"
                            )
                        )
                    else:
                        remaining.append((waiter, event))
                lock.waiters = remaining
            if lock.holder is None and not lock.waiters:
                del self._locks[key]
        return released

    def _grant_next(self, key: Hashable, lock: _Lock) -> None:
        if lock.waiters:
            txn, granted = lock.waiters.popleft()
            lock.holder = txn
            self._waiting_for_key.pop(txn, None)
            granted.set(None)
        else:
            lock.holder = None

    # -- metrics -----------------------------------------------------------------

    def held_count(self) -> int:
        return sum(1 for lock in self._locks.values() if lock.holder is not None)

    def waiting_count(self) -> int:
        return sum(len(lock.waiters) for lock in self._locks.values())
