"""Property tests for the Definition-3 checker.

Soundness round trip: take a random *global* SI-schedule S as ground
truth, derive each replica's local schedule from it exactly as a correct
ROWA system would (same ww commit order everywhere; remote transactions
with empty readsets; local reads-from positions consistent with S) — the
checker must accept.  Conversely, swapping the commit order of a
ww-conflicting pair at one replica must be rejected.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.si import Schedule, TxnSpec, check_one_copy_si
from repro.si.schedule import BEGIN, COMMIT

N_OBJECTS = 5
REPLICAS = ("R0", "R1")


@st.composite
def global_executions(draw):
    """A random valid global execution: specs + a global SI-schedule."""
    n_txns = draw(st.integers(min_value=2, max_value=6))
    rng = random.Random(draw(st.integers(0, 10_000)))
    specs = []
    for i in range(n_txns):
        writes = frozenset(
            rng.sample(range(N_OBJECTS), rng.randint(0, 2))
        )
        reads = frozenset(rng.sample(range(N_OBJECTS), rng.randint(0, 3)))
        specs.append(TxnSpec(str(i), readset=reads, writeset=writes))
    # build a concurrent global SI-schedule greedily: a transaction may
    # stay open across others' commits as long as no two open
    # transactions ww-conflict (exactly Def. 1's requirement)
    events = []
    open_txns = []
    for spec in specs:
        for other in list(open_txns):
            if spec.writeset & other.writeset:
                events.append((COMMIT, other.tid))
                open_txns.remove(other)
        events.append((BEGIN, spec.tid))
        open_txns.append(spec)
        if rng.random() < 0.5 and open_txns:
            victim = rng.choice(open_txns)
            events.append((COMMIT, victim.tid))
            open_txns.remove(victim)
    rng.shuffle(open_txns)
    for spec in open_txns:
        events.append((COMMIT, spec.tid))
    schedule = Schedule({s.tid: s for s in specs}, events)
    assert schedule.is_si_schedule()
    locality = {s.tid: rng.choice(REPLICAS) for s in specs}
    return specs, schedule, locality, rng


def derive_local(specs, schedule, locality, replica):
    """Project the global schedule onto one replica (correct ROWA)."""
    transactions = {}
    events = []
    for kind, tid in schedule.events:
        spec = next(s for s in specs if s.tid == tid)
        is_local = locality[tid] == replica
        if spec.is_readonly and not is_local:
            continue  # read-only transactions exist only at home
        transactions[tid] = TxnSpec(
            tid,
            spec.readset if is_local else frozenset(),
            spec.writeset,
        )
        events.append((kind, tid))
    return Schedule(transactions, events)


@settings(max_examples=80, deadline=None)
@given(global_executions())
def test_correct_rowa_projection_always_accepted(execution):
    specs, schedule, locality, _rng = execution
    schedules = {r: derive_local(specs, schedule, locality, r) for r in REPLICAS}
    report = check_one_copy_si(schedules, locality)
    assert report.ok, [str(v) for v in report.violations]
    assert report.witness is not None
    assert report.witness.is_si_schedule()


@settings(max_examples=80, deadline=None)
@given(global_executions())
def test_ww_order_swap_at_one_replica_rejected(execution):
    specs, schedule, locality, rng = execution
    schedules = {r: derive_local(specs, schedule, locality, r) for r in REPLICAS}
    # find a ww-conflicting pair present at R1 and swap their commits
    target = schedules["R1"]
    pair = None
    tids = list(target.transactions)
    for i, a in enumerate(tids):
        for b in tids[i + 1:]:
            if target.transactions[a].conflicts_with(target.transactions[b]):
                pair = (a, b)
                break
        if pair:
            break
    if pair is None:
        return  # nothing to corrupt in this example
    a, b = pair
    events = list(target.events)
    ia, ib = events.index((COMMIT, a)), events.index((COMMIT, b))
    events[ia], events[ib] = events[ib], events[ia]
    # swapping commits may also break Def. 1 locally; either way the
    # checker must not report success
    schedules["R1"] = Schedule(target.transactions, events)
    report = check_one_copy_si(schedules, locality)
    assert not report.ok


@settings(max_examples=60, deadline=None)
@given(global_executions())
def test_witness_is_equivalent_projection_per_replica(execution):
    """The produced witness must order ww commits exactly as the locals."""
    specs, schedule, locality, _rng = execution
    schedules = {r: derive_local(specs, schedule, locality, r) for r in REPLICAS}
    report = check_one_copy_si(schedules, locality)
    assert report.ok
    witness = report.witness
    for replica, local in schedules.items():
        tids = [t for t, s in local.transactions.items() if s.writeset]
        for i, a in enumerate(tids):
            for b in tids[i + 1:]:
                if not local.transactions[a].conflicts_with(local.transactions[b]):
                    continue
                assert witness.before((COMMIT, a), (COMMIT, b)) == local.before(
                    (COMMIT, a), (COMMIT, b)
                )
