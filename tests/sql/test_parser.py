"""Parser tests: statement shapes, precedence, params, errors."""

import pytest

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.parser import parse, parse_cached


def test_select_star():
    stmt = parse("SELECT * FROM t")
    assert stmt.columns == ("*",)
    assert stmt.table == "t"
    assert stmt.where is None


def test_select_columns_aliases_order_limit():
    stmt = parse(
        "SELECT a, b AS bee, a + 1 AS nxt FROM t WHERE a > 1 "
        "ORDER BY b DESC, a LIMIT 5"
    )
    assert [c.alias for c in stmt.columns] == [None, "bee", "nxt"]
    assert stmt.order_by[0].descending is True
    assert stmt.order_by[1].descending is False
    assert stmt.limit == ast.Literal(5)


def test_select_join():
    stmt = parse("SELECT t.a, u.b FROM t JOIN u ON t.a = u.ref WHERE u.b = 1")
    assert len(stmt.joins) == 1
    join = stmt.joins[0]
    assert join.table == "u"
    assert join.on_left == ast.Column("a", "t")
    assert join.on_right == ast.Column("ref", "u")


def test_select_join_with_aliases():
    stmt = parse("SELECT x.a FROM t x INNER JOIN u y ON x.a = y.a")
    assert stmt.alias == "x"
    assert stmt.joins[0].alias == "y"


def test_aggregates():
    stmt = parse("SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t")
    assert stmt.is_aggregate
    funcs = [c.expr.func for c in stmt.columns]
    assert funcs == ["COUNT", "SUM", "AVG", "MIN", "MAX"]
    assert stmt.columns[0].expr.arg is None


def test_insert_multi_row_with_params():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, ?), (?, 'x')")
    assert stmt.columns == ("a", "b")
    assert stmt.rows[0] == (ast.Literal(1), ast.Param(0))
    assert stmt.rows[1] == (ast.Param(1), ast.Literal("x"))


def test_insert_arity_mismatch_rejected():
    with pytest.raises(SQLError, match="columns but"):
        parse("INSERT INTO t (a, b) VALUES (1)")


def test_update():
    stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE a = 3")
    assert stmt.assignments[0][0] == "a"
    assert stmt.assignments[1] == ("b", ast.Param(0))
    assert isinstance(stmt.where, ast.BinOp)


def test_delete_without_where():
    stmt = parse("DELETE FROM t")
    assert stmt.where is None


def test_create_table():
    stmt = parse(
        "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, f FLOAT, b BOOL)"
    )
    assert stmt.columns[0] == ast.CreateColumn("id", "INT", primary_key=True)
    assert stmt.columns[1].not_null


def test_create_index():
    stmt = parse("CREATE INDEX i_name ON t (name)")
    assert (stmt.name, stmt.table, stmt.column) == ("i_name", "t", "name")


def test_and_binds_tighter_than_or():
    stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
    assert stmt.where.op == "OR"
    assert stmt.where.right.op == "AND"


def test_arithmetic_precedence():
    stmt = parse("SELECT * FROM t WHERE a = 1 + 2 * 3")
    comparison = stmt.where
    assert comparison.right.op == "+"
    assert comparison.right.right.op == "*"


def test_parentheses_override_precedence():
    stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
    assert stmt.where.op == "AND"
    assert stmt.where.left.op == "OR"


def test_not_in_between_like_is_null():
    stmt = parse(
        "SELECT * FROM t WHERE a NOT IN (1, 2) AND b BETWEEN 1 AND 5 "
        "AND c LIKE 'x%' AND d IS NOT NULL AND e IS NULL"
    )
    terms = []

    def flatten(node):
        if isinstance(node, ast.BinOp) and node.op == "AND":
            flatten(node.left)
            flatten(node.right)
        else:
            terms.append(node)

    flatten(stmt.where)
    assert isinstance(terms[0], ast.InList) and terms[0].negated
    assert isinstance(terms[1], ast.Between) and not terms[1].negated
    assert isinstance(terms[2], ast.Like)
    assert isinstance(terms[3], ast.IsNull) and terms[3].negated
    assert isinstance(terms[4], ast.IsNull) and not terms[4].negated


def test_unary_minus_and_not():
    stmt = parse("SELECT * FROM t WHERE NOT a = -5")
    assert isinstance(stmt.where, ast.UnaryOp)
    assert stmt.where.op == "NOT"


def test_params_numbered_left_to_right():
    stmt = parse("UPDATE t SET a = ?, b = ? WHERE c = ?")
    assert stmt.assignments[0][1] == ast.Param(0)
    assert stmt.assignments[1][1] == ast.Param(1)
    assert stmt.where.right == ast.Param(2)


def test_boolean_and_null_literals():
    stmt = parse("SELECT * FROM t WHERE a = TRUE AND b = FALSE AND c = NULL")
    terms = []

    def flatten(node):
        if isinstance(node, ast.BinOp) and node.op == "AND":
            flatten(node.left)
            flatten(node.right)
        else:
            terms.append(node)

    flatten(stmt.where)
    assert terms[0].right == ast.Literal(True)
    assert terms[1].right == ast.Literal(False)
    assert terms[2].right == ast.Literal(None)


def test_trailing_semicolon_allowed():
    parse("SELECT * FROM t;")


def test_garbage_after_statement_rejected():
    with pytest.raises(SQLError):
        parse("SELECT * FROM t garbage extra ,")


def test_unknown_statement_rejected():
    with pytest.raises(SQLError, match="cannot parse"):
        parse("DROP TABLE t")


def test_parse_cached_returns_same_object():
    a = parse_cached("SELECT * FROM cache_me")
    b = parse_cached("SELECT * FROM cache_me")
    assert a is b
