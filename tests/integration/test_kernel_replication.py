"""The Postgres-R(SI)-style kernel comparator ([34], §6.3)."""


from repro.client import Driver
from repro.core.kernel_replication import KernelReplicatedSystem
from repro.errors import TransactionAborted
from repro.testing import query


def make_system(n=3, seed=1):
    system = KernelReplicatedSystem(n_replicas=n, seed=seed)
    system.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    system.bulk_load("kv", [{"k": k, "v": 0} for k in range(1, 5)])
    return system, Driver(system.network, system.discovery)


def settle(system, seconds=2.0):
    system.sim.run(until=system.sim.now + seconds)


def test_update_propagates_everywhere():
    system, driver = make_system()
    sim = system.sim

    def client():
        conn = yield from driver.connect(system.new_client_host())
        yield from conn.execute("UPDATE kv SET v = 3 WHERE k = 1")
        yield from conn.commit()

    sim.run_process(client())
    settle(system)
    for node in system.nodes:
        assert query(sim, node.db, "SELECT v FROM kv WHERE k = 1") == [{"v": 3}]


def test_conflicting_writers_one_aborts():
    system, driver = make_system(seed=2)
    sim = system.sim
    outcomes = []

    def client(address, value):
        conn = yield from driver.connect(system.new_client_host(), address=address)
        try:
            yield from conn.execute("UPDATE kv SET v = ? WHERE k = 1", (value,))
            yield from conn.commit()
            outcomes.append("committed")
        except TransactionAborted:
            outcomes.append("aborted")

    sim.spawn(client("KR0", 1), name="a")
    sim.spawn(client("KR1", 2), name="b")
    sim.run()
    settle(system)
    assert sorted(outcomes) == ["aborted", "committed"]
    states = {
        tuple(
            (r["k"], r["v"])
            for r in query(sim, node.db, "SELECT k, v FROM kv ORDER BY k")
        )
        for node in system.nodes
    }
    assert len(states) == 1


def test_remote_writeset_kills_conflicting_local_transaction():
    """The kernel privilege: a certified remote writeset aborts a local
    uncertified lock holder instead of waiting behind it (§4.3.1 notes a
    middleware cannot do this)."""
    system, driver = make_system(seed=3)
    sim = system.sim
    log = {}

    def local_holder():
        conn = yield from driver.connect(system.new_client_host(), address="KR0")
        yield from conn.execute("UPDATE kv SET v = 100 WHERE k = 2")
        yield sim.sleep(5.0)  # holds the row lock while remote ws arrives
        try:
            yield from conn.execute("UPDATE kv SET v = 101 WHERE k = 3")
            yield from conn.commit()
            log["local"] = "committed"
        except TransactionAborted:
            log["local"] = "killed"

    def remote_writer():
        yield sim.sleep(0.5)
        conn = yield from driver.connect(system.new_client_host(), address="KR1")
        yield from conn.execute("UPDATE kv SET v = 7 WHERE k = 2")
        yield from conn.commit()
        log["remote_done_at"] = sim.now

    sim.spawn(local_holder(), name="local")
    sim.spawn(remote_writer(), name="remote")
    sim.run()
    settle(system)
    assert log["local"] == "killed"
    # the remote commit did not wait for the local holder's 5s sleep
    assert log["remote_done_at"] < 1.0
    assert system.nodes[0].local_aborts_by_remote == 1
    for node in system.nodes:
        assert query(sim, node.db, "SELECT v FROM kv WHERE k = 2") == [{"v": 7}]


def test_blocked_local_transaction_is_woken_when_killed():
    """Killing a local holder that is itself waiting on another lock must
    wake it with an error (the lock-manager cancellation path)."""
    system, driver = make_system(seed=4)
    sim = system.sim
    log = {}

    def holder_of_3():
        conn = yield from driver.connect(system.new_client_host(), address="KR0")
        yield from conn.execute("UPDATE kv SET v = 1 WHERE k = 3")
        yield sim.sleep(10.0)
        yield from conn.rollback()

    def victim():
        yield sim.sleep(0.2)
        conn = yield from driver.connect(system.new_client_host(), address="KR0")
        yield from conn.execute("UPDATE kv SET v = 2 WHERE k = 2")  # holds k=2
        try:
            # blocks behind holder_of_3 on k=3
            yield from conn.execute("UPDATE kv SET v = 2 WHERE k = 3")
            log["victim"] = "proceeded"
        except TransactionAborted:
            log["victim"] = "woken-and-aborted"
            log["at"] = sim.now

    def remote_writer():
        yield sim.sleep(1.0)
        conn = yield from driver.connect(system.new_client_host(), address="KR1")
        yield from conn.execute("UPDATE kv SET v = 9 WHERE k = 2")
        yield from conn.commit()  # kills the victim holding k=2

    sim.spawn(holder_of_3(), name="h3")
    sim.spawn(victim(), name="victim")
    sim.spawn(remote_writer(), name="remote")
    sim.run()
    settle(system)
    assert log["victim"] == "woken-and-aborted"
    assert log["at"] < 2.0  # long before holder_of_3's sleep ends


def test_readonly_transactions_unaffected():
    system, driver = make_system(seed=5)
    sim = system.sim

    def client():
        conn = yield from driver.connect(system.new_client_host())
        result = yield from conn.execute("SELECT COUNT(*) AS n FROM kv")
        yield from conn.commit()
        return result.rows

    assert sim.run_process(client()) == [{"n": 4}]
