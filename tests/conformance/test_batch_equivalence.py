"""Batching conformance: batched delivery is observationally identical
to per-message delivery.

The strong property is checked at component level: the same stream of
writeset records is pushed through a Certifier + ReplicaManager +
Database once message-at-a-time and once packed into batches.  Both
runs must produce identical validation decisions, identical tid
assignments, identical commit order (hence identical CSNs), and
identical final database state — across full runs and crash-truncated
prefixes (a batch is all-or-nothing, so a prefix of batches is a prefix
of messages at a batch boundary).

A weaker cluster-level check (same workload, jitter 0, disjoint keys)
asserts outcome/state/audit equivalence through the full stack.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.core.replica import ReplicaManager, ReplicaNode
from repro.core.tocommit import Entry
from repro.core.validation import Certifier, WsRecord
from repro.gcs import GcsConfig
from repro.sim import Simulator
from repro.storage import Database
from repro.storage.writeset import UPDATE, WriteOp, WriteSet
from repro.testing import query

KEYS = list(range(1, 13))

# one writeset: a non-empty set of keys plus a certificate lag — how far
# behind the certification frontier the sender's snapshot was (0 = saw
# everything validated so far, bigger = staler, more likely to abort)
writeset_specs = st.lists(
    st.tuples(
        st.sets(st.sampled_from(KEYS), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=24,
)


def make_records(specs):
    """Fresh WsRecord instances (validate mutates ``tid``) with
    deterministic certificates derived from the drawn lags."""
    records = []
    for index, (keys, lag) in enumerate(specs):
        writeset = WriteSet(
            [WriteOp("t", k, UPDATE, {"k": k, "v": index}) for k in sorted(keys)]
        )
        cert = max(0, index - lag)
        records.append(WsRecord(f"g{index}", writeset, cert=cert, sender="X"))
    return records


def chunk(items, size):
    return [items[i : i + size] for i in range(0, len(items), size)]


def run_component(specs, batch_size, batched, group_commit=False, n_batches=None):
    """Feed the record stream through certification + queue + database.

    The stream is chunked into groups of ``batch_size``; each group is
    delivered at its own instant.  ``batched=True`` delivers a group as
    one unit (validate_batch + enqueue_batch); ``batched=False``
    delivers its messages one at a time, back to back, at the same
    instant — the per-message protocol under identical delivery timing.
    ``n_batches`` truncates delivery after that many groups (the crash
    case: uniformity cuts the stream at a batch boundary).
    Returns (decisions, tids, commit order, final csn, committed rows).
    """
    sim = Simulator(seed=0)
    db = Database(sim, name="X", conflict_detection="locking")
    db.run_ddl("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    db.bulk_load("t", [{"k": k, "v": -1} for k in KEYS])
    manager = ReplicaManager(
        sim,
        ReplicaNode(name="X", db=db),
        strict_serial=False,
        hole_sync=True,
        group_commit=group_commit,
    )
    certifier = Certifier()
    records = make_records(specs)
    batches = chunk(records, batch_size)
    if n_batches is not None:
        batches = batches[:n_batches]
    decisions: list[bool] = []
    commit_order: list[str] = []
    manager.on_commit = lambda entry: commit_order.append(entry.gid)

    def feeder():
        for batch in batches:
            if batched:
                oks = certifier.validate_batch(batch)
                decisions.extend(oks)
                manager.enqueue_batch(
                    [Entry(r) for r, ok in zip(batch, oks) if ok]
                )
            else:
                for record in batch:
                    ok = certifier.validate(record)
                    decisions.append(ok)
                    if ok:
                        manager.enqueue(Entry(record))
            yield sim.sleep(0.001)

    sim.run_process(feeder())
    sim.run(until=sim.now + 5.0)
    tids = {r.gid: r.tid for batch in batches for r in batch}
    rows = tuple(
        (r["k"], r["v"])
        for r in query(sim, db, "SELECT k, v FROM t ORDER BY k")
    )
    return decisions, tids, commit_order, db.csn, rows


@settings(max_examples=40, deadline=None)
@given(specs=writeset_specs, batch_size=st.integers(min_value=2, max_value=8))
def test_batched_delivery_equals_per_message(specs, batch_size):
    """Strong conformance: with the same delivery instants, packing a
    group into one Batch instead of k back-to-back Messages changes
    NOTHING — decisions, tids, per-replica commit order, CSNs, state."""
    baseline = run_component(specs, batch_size, batched=False)
    batched = run_component(specs, batch_size, batched=True)
    assert batched == baseline
    # Timing-independent invariants also hold against fully spaced
    # one-message-per-instant delivery: certification decisions, tid
    # assignment, and final state (commit ORDER may legally differ —
    # adjustment 2 reorders non-conflicting commits).
    spaced = run_component(specs, batch_size=1, batched=False)
    assert spaced[0] == batched[0]  # decisions
    assert spaced[1] == batched[1]  # tids
    assert spaced[3] == batched[3]  # total commits -> same final csn
    assert spaced[4] == batched[4]  # final rows


@settings(max_examples=20, deadline=None)
@given(specs=writeset_specs, batch_size=st.integers(min_value=2, max_value=8))
def test_group_commit_preserves_equivalence(specs, batch_size):
    """Group commit changes cost accounting only: with it enabled on both
    sides the batched run still matches per-message exactly, and the
    whole quadruple matches the no-group-commit run."""
    baseline = run_component(specs, batch_size, batched=False, group_commit=True)
    batched = run_component(specs, batch_size, batched=True, group_commit=True)
    assert batched == baseline
    # and group commit never changes any observable vs plain commit
    assert run_component(specs, batch_size, batched=True) == batched


@settings(max_examples=25, deadline=None)
@given(
    specs=writeset_specs,
    batch_size=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_crash_prefix_of_batches_equals_prefix_of_messages(
    specs, batch_size, data
):
    """Uniform delivery makes a crash cut the stream at a batch boundary;
    the surviving prefix must equal per-message delivery of exactly those
    messages (and of those messages only)."""
    n_total = len(chunk(make_records(specs), batch_size))
    n_batches = data.draw(st.integers(min_value=0, max_value=n_total))
    delivered = sum(
        len(b) for b in chunk(make_records(specs), batch_size)[:n_batches]
    )
    baseline = run_component(specs[:delivered], batch_size, batched=False)
    truncated = run_component(
        specs, batch_size, batched=True, n_batches=n_batches
    )
    assert truncated == baseline


def _run_cluster(batching: bool):
    gcs = (
        GcsConfig(batch_max_messages=4, batch_window=0.004, jitter=0.0)
        if batching
        else GcsConfig(jitter=0.0)
    )
    cluster = SIRepCluster(
        ClusterConfig(
            n_replicas=3,
            seed=11,
            gcs=gcs,
            group_commit=batching,
            net_jitter=0.0,
        )
    )
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": k, "v": 0} for k in range(40)])
    driver = Driver(cluster.network, cluster.discovery)
    outcomes: dict[str, int] = {}

    def client(cid):
        conn = yield from driver.connect(
            cluster.new_client_host(), address=f"R{cid % 3}"
        )
        for i in range(8):
            key = cid * 8 + i  # disjoint keys: no certification aborts
            yield from conn.execute(
                "UPDATE kv SET v = ? WHERE k = ?", (cid * 100 + i, key)
            )
            yield from conn.commit()
            outcomes[f"{cid}:{i}"] = cid * 100 + i

    for cid in range(5):
        sim.spawn(client(cid), name=f"c{cid}")
    sim.run(until=20.0)
    states = {
        tuple(
            (r["k"], r["v"])
            for r in query(sim, rep.node.db, "SELECT k, v FROM kv ORDER BY k")
        )
        for rep in cluster.replicas
    }
    assert len(states) == 1, "replicas diverged"
    report = cluster.one_copy_report()
    return outcomes, states.pop(), report


def test_cluster_level_outcomes_match_unbatched():
    unbatched = _run_cluster(batching=False)
    batched = _run_cluster(batching=True)
    assert batched[0] == unbatched[0]  # every transaction committed in both
    assert batched[1] == unbatched[1]  # identical final replicated state
    assert unbatched[2].ok and batched[2].ok
