"""Durability on the sharded deployment: one shared store, per-group
watermarks, delta recovery within a group, elastic group growth, and
cold restart of the whole deployment."""

from repro.durable import DurabilityConfig, DurabilityStore
from repro.shard import ShardConfig, ShardedCluster
from repro.testing import query

TABLE_MAP = {"kv0": 0, "kv1": 1}


def build_cluster(seed=1, store=None, cold=False):
    config = ShardConfig(
        n_groups=2,
        replicas_per_group=3,
        seed=seed,
        partition="explicit",
        table_map=TABLE_MAP,
        durable=True,
    )
    if cold:
        return ShardedCluster.cold_restart(config, store)
    cluster = ShardedCluster(config, durability=store)
    cluster.load_schema(
        [f"CREATE TABLE {t} (k INT PRIMARY KEY, v INT)" for t in TABLE_MAP]
    )
    for table in TABLE_MAP:
        cluster.bulk_load(table, [{"k": k, "v": 0} for k in range(1, 4)])
    return cluster


def run_client(cluster, writes=10, table="kv0"):
    sim = cluster.sim

    def client():
        conn = yield from cluster.connect(cluster.new_client_host())
        for i in range(writes):
            yield sim.sleep(0.05)
            yield from conn.execute(
                f"UPDATE {table} SET v = ? WHERE k = ?", (i, 1 + i % 3)
            )
            yield from conn.commit()

    sim.spawn(client(), name="client")


def group_states(cluster, group, table):
    return {
        r.name: tuple(
            (row["k"], row["v"])
            for row in query(
                cluster.sim, r.node.db, f"SELECT k, v FROM {table} ORDER BY k"
            )
        )
        for r in cluster.groups[group].alive_replicas()
    }


def test_shard_names_are_globally_unique_in_the_shared_store():
    store = DurabilityStore(DurabilityConfig())
    cluster = build_cluster(store=store)
    run_client(cluster, writes=4)
    cluster.sim.run()
    assert sorted(store.names()) == sorted(
        r.name for g in cluster.groups for r in g.replicas
    )
    # the writing group logged writesets; each group has its own watermark
    g0 = cluster.groups[0]
    assert g0.stability is not cluster.groups[1].stability
    assert g0.stability.stable_seq() >= 4


def test_delta_recovery_within_one_group():
    cluster = build_cluster(seed=2)
    sim = cluster.sim
    sim.call_at(0.12, lambda: cluster.crash(0, 0))
    run_client(cluster, writes=8, table="kv0")
    sim.call_at(2.0, lambda: cluster.recover_replica(0, 0))
    sim.run()
    sim.run(until=sim.now + 5.0)
    recovered = cluster.groups[0].replicas[0]
    assert recovered.recovered
    assert recovered.recovery_stats["mode"] == "delta"
    states = group_states(cluster, 0, "kv0")
    assert len(states) == 3
    assert len(set(states.values())) == 1
    report = cluster.one_copy_report()
    assert report.ok  # both group audits + cross-shard freshness


def test_elastic_join_grows_one_group():
    cluster = build_cluster(seed=3)
    sim = cluster.sim
    run_client(cluster, writes=8, table="kv1")
    group1 = TABLE_MAP["kv1"]
    sim.call_at(0.3, lambda: cluster.add_replica(group1))
    sim.run()
    sim.run(until=sim.now + 5.0)
    joined = cluster.groups[group1].replicas[3]
    assert joined.name == f"G{group1}-R3"
    assert joined.recovered
    states = group_states(cluster, group1, "kv1")
    assert len(states) == 4
    assert len(set(states.values())) == 1
    assert cluster.one_copy_report().ok


def test_cold_restart_of_the_whole_sharded_deployment():
    store = DurabilityStore(DurabilityConfig())
    cluster = build_cluster(seed=4, store=store)
    run_client(cluster, writes=6, table="kv0")
    run_client(cluster, writes=6, table="kv1")
    cluster.sim.run()
    expected = {
        table: group_states(cluster, group, table)[f"G{group}-R0"]
        for table, group in TABLE_MAP.items()
    }
    cluster.stop()

    restarted = build_cluster(seed=5, store=store, cold=True)
    for table, group in TABLE_MAP.items():
        states = group_states(restarted, group, table)
        assert set(states.values()) == {expected[table]}
    # traffic continues and the audits still pass
    run_client(restarted, writes=4, table="kv0")
    restarted.sim.run()
    restarted.sim.run(until=restarted.sim.now + 3.0)
    assert restarted.one_copy_report().ok
    states = group_states(restarted, 0, "kv0")
    assert len(set(states.values())) == 1
