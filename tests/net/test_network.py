"""Unit tests for the point-to-point network substrate."""

import pytest

from repro.errors import ReproError
from repro.net import ChannelClosed, LatencyModel, Network
from repro.sim import Simulator


def make_net(base=0.001, jitter=0.0):
    sim = Simulator(seed=3)
    net = Network(sim, latency=LatencyModel(base=base, jitter=jitter))
    return sim, net


def test_register_and_duplicate_address():
    sim, net = make_net()
    net.register("a")
    with pytest.raises(ReproError, match="duplicate"):
        net.register("a")


def test_connect_send_recv_round_trip():
    sim, net = make_net(base=0.001)
    client = net.register("client")
    server = net.register("server")

    def server_proc():
        end = yield server.accept()
        request = yield from end.recv()
        end.send(request + "-reply")

    def client_proc():
        channel = net.connect(client, "server")
        channel.client_end.send("ping")
        reply = yield from channel.client_end.recv()
        return reply, sim.now

    sim.spawn(server_proc(), name="server")
    reply, t = sim.run_process(client_proc())
    assert reply == "ping-reply"
    assert t == pytest.approx(0.002)  # two hops


def test_fifo_ordering_with_jitter():
    sim = Simulator(seed=11)
    net = Network(sim, latency=LatencyModel(base=0.001, jitter=0.005, rng=sim.rng("net")))
    client = net.register("client")
    server = net.register("server")
    received = []

    def server_proc():
        end = yield server.accept()
        for _ in range(20):
            received.append((yield from end.recv()))

    def client_proc():
        channel = net.connect(client, "server")
        for i in range(20):
            channel.client_end.send(i)
            yield sim.sleep(0.0001)

    sim.spawn(server_proc(), name="server")
    sim.spawn(client_proc(), name="client")
    sim.run()
    assert received == list(range(20))


def test_connect_to_unknown_or_dead_host_fails():
    sim, net = make_net()
    client = net.register("client")
    with pytest.raises(ChannelClosed):
        net.connect(client, "nowhere")
    net.register("server")
    net.crash("server")
    with pytest.raises(ChannelClosed):
        net.connect(client, "server")


def test_crash_breaks_channel_for_survivor():
    sim, net = make_net()
    client = net.register("client")
    server = net.register("server")

    def server_proc():
        yield server.accept()
        # server never replies; it will be crashed

    def client_proc():
        channel = net.connect(client, "server")
        sim.call_at(1.0, lambda: net.crash("server"))
        with pytest.raises(ChannelClosed):
            yield from channel.client_end.recv()
        return sim.now

    sim.spawn(server_proc(), name="server")
    t = sim.run_process(client_proc())
    assert t >= 1.0


def test_messages_sent_before_crash_are_drained_before_break():
    """FIFO break: in-flight data from the dead peer arrives first."""
    sim, net = make_net(base=0.010)
    client = net.register("client")
    server = net.register("server")

    def server_proc():
        end = yield server.accept()
        end.send("last-words")
        # crash right after sending: message is on the wire

    def client_proc():
        channel = net.connect(client, "server")
        sim.call_at(0.001, lambda: net.crash("server"))
        message = yield from channel.client_end.recv()
        assert message == "last-words"
        with pytest.raises(ChannelClosed):
            yield from channel.client_end.recv()
        return True

    sim.spawn(server_proc(), name="server")
    assert sim.run_process(client_proc()) is True


def test_send_to_crashed_host_is_dropped():
    sim, net = make_net()
    client = net.register("client")
    server = net.register("server")

    def server_proc():
        yield server.accept()

    def client_proc():
        channel = net.connect(client, "server")
        yield sim.sleep(0.5)
        net.crash("server")
        channel.client_end.send("into the void")  # must not raise
        with pytest.raises(ChannelClosed):
            yield from channel.client_end.recv()
        return True

    sim.spawn(server_proc(), name="server")
    assert sim.run_process(client_proc()) is True


def test_recv_after_break_keeps_raising():
    sim, net = make_net()
    client = net.register("client")
    net.register("server")

    def server_proc():
        yield net.host("server").accept()

    def client_proc():
        channel = net.connect(client, "server")
        net.crash("server")
        for _ in range(2):
            with pytest.raises(ChannelClosed):
                yield from channel.client_end.recv()
        return True

    sim.spawn(server_proc(), name="server")
    assert sim.run_process(client_proc()) is True


def test_local_close_breaks_both_ends():
    sim, net = make_net()
    client = net.register("client")
    server = net.register("server")

    def server_proc():
        end = yield server.accept()
        with pytest.raises(ChannelClosed):
            yield from end.recv()

    def client_proc():
        channel = net.connect(client, "server")
        yield sim.sleep(0.1)
        channel.close()
        return True

    sim.spawn(server_proc(), name="server")
    assert sim.run_process(client_proc()) is True
    sim.run()


def test_latency_model_without_rng_requires_no_jitter():
    # jitter-free models never draw randomness, so no RNG is fine...
    model = LatencyModel(base=0.004, jitter=0.0, rng=None)
    assert model.sample() == 0.004
    # ...but jitter with no RNG bound is a configuration error, not a
    # silent fall-back to determinism
    with pytest.raises(ReproError):
        LatencyModel(base=0.004, jitter=0.01, rng=None).sample()


def test_latency_model_jitter_bounds():
    sim = Simulator(seed=5)
    model = LatencyModel(base=0.001, jitter=0.002, rng=sim.rng("lat"))
    for _ in range(100):
        sample = model.sample()
        assert 0.001 <= sample <= 0.003
