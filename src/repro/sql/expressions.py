"""Expression evaluation with SQL-ish NULL semantics.

Comparisons involving NULL are false; arithmetic with NULL yields NULL;
``IS [NOT] NULL`` tests explicitly.  This is a pragmatic two-valued
simplification of SQL's three-valued logic, sufficient for the workloads.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator, Optional

from repro.errors import SQLError
from repro.sql import ast

RowLookup = Callable[[ast.Column], Any]


def evaluate(expr: Any, lookup: RowLookup, params: tuple) -> Any:
    """Evaluate ``expr`` against one row (via ``lookup``) and parameters."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        if expr.index >= len(params):
            raise SQLError(
                f"statement has parameter ?{expr.index} but only "
                f"{len(params)} values were supplied"
            )
        return params[expr.index]
    if isinstance(expr, ast.Column):
        return lookup(expr)
    if isinstance(expr, ast.BinOp):
        return _binop(expr, lookup, params)
    if isinstance(expr, ast.UnaryOp):
        value = evaluate(expr.operand, lookup, params)
        if expr.op == "NOT":
            return not _truthy(value)
        if expr.op == "NEG":
            return None if value is None else -value
        raise SQLError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, ast.InList):
        value = evaluate(expr.expr, lookup, params)
        if value is None:
            return False
        members = [evaluate(item, lookup, params) for item in expr.items]
        result = value in members
        return not result if expr.negated else result
    if isinstance(expr, ast.Between):
        value = evaluate(expr.expr, lookup, params)
        low = evaluate(expr.low, lookup, params)
        high = evaluate(expr.high, lookup, params)
        if value is None or low is None or high is None:
            return False
        result = low <= value <= high
        return not result if expr.negated else result
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.expr, lookup, params)
        result = value is None
        return not result if expr.negated else result
    if isinstance(expr, ast.Like):
        value = evaluate(expr.expr, lookup, params)
        pattern = evaluate(expr.pattern, lookup, params)
        if value is None or pattern is None:
            return False
        result = bool(_like_regex(pattern).match(str(value)))
        return not result if expr.negated else result
    raise SQLError(f"cannot evaluate expression {expr!r}")


def _binop(expr: ast.BinOp, lookup: RowLookup, params: tuple) -> Any:
    op = expr.op
    if op == "AND":
        return _truthy(evaluate(expr.left, lookup, params)) and _truthy(
            evaluate(expr.right, lookup, params)
        )
    if op == "OR":
        return _truthy(evaluate(expr.left, lookup, params)) or _truthy(
            evaluate(expr.right, lookup, params)
        )
    left = evaluate(expr.left, lookup, params)
    right = evaluate(expr.right, lookup, params)
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise SQLError("division by zero")
        return left / right
    if left is None or right is None:
        return False
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError as err:
        raise SQLError(f"type error comparing {left!r} {op} {right!r}") from err
    raise SQLError(f"unknown operator {op!r}")


def _truthy(value: Any) -> bool:
    return bool(value)


_LIKE_CACHE: dict[str, re.Pattern] = {}


def _like_regex(pattern: str) -> re.Pattern:
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


# ---------------------------------------------------------------------------
# Planner helpers
# ---------------------------------------------------------------------------


def conjuncts(where: Optional[Any]) -> Iterator[Any]:
    """Top-level AND-ed terms of a WHERE clause."""
    if where is None:
        return
    if isinstance(where, ast.BinOp) and where.op == "AND":
        yield from conjuncts(where.left)
        yield from conjuncts(where.right)
    else:
        yield where


def constant_value(expr: Any, params: tuple) -> tuple[bool, Any]:
    """(is_constant, value) for expressions not needing a row."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.Param):
        return True, params[expr.index] if expr.index < len(params) else None
    if isinstance(expr, ast.UnaryOp) and expr.op == "NEG":
        ok, value = constant_value(expr.operand, params)
        if ok and value is not None:
            return True, -value
        return False, None
    return False, None


def equality_lookups(
    where: Optional[Any], params: tuple, matches_column: Callable[[ast.Column], Optional[str]]
) -> dict[str, list[Any]]:
    """Constant equality constraints per column name.

    ``matches_column`` maps an AST column reference to the canonical
    column name if it refers to the scanned table, else None.  IN-lists of
    constants contribute multi-value lookups.
    """
    found: dict[str, list[Any]] = {}
    for term in conjuncts(where):
        if isinstance(term, ast.BinOp) and term.op == "=":
            for col_side, other in ((term.left, term.right), (term.right, term.left)):
                if isinstance(col_side, ast.Column):
                    name = matches_column(col_side)
                    if name is None:
                        continue
                    ok, value = constant_value(other, params)
                    if ok:
                        found.setdefault(name, []).append(value)
        elif isinstance(term, ast.InList) and not term.negated:
            if isinstance(term.expr, ast.Column):
                name = matches_column(term.expr)
                if name is None:
                    continue
                values = []
                for item in term.items:
                    ok, value = constant_value(item, params)
                    if not ok:
                        break
                    values.append(value)
                else:
                    existing = found.get(name)
                    if existing is None:
                        found[name] = values
    return found
