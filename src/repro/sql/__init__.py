"""SQL front-end: the dialect clients speak through the JDBC driver.

Supported statements::

    CREATE TABLE t (a INT PRIMARY KEY, b TEXT NOT NULL, c FLOAT, d BOOL,
                    p INT REFERENCES parent)
    CREATE INDEX i ON t (b)
    INSERT INTO t (a, b) VALUES (1, 'x'), (2, ?)
    UPDATE t SET b = ?, c = c + 1 WHERE a = 1 AND c > 0
    DELETE FROM t WHERE b IN ('x', 'y')
    SELECT [DISTINCT] a, b FROM t WHERE ... ORDER BY b DESC, a LIMIT 10
    SELECT t.a, u.d FROM t [LEFT [OUTER]] JOIN u ON t.a = u.ref WHERE ...
    SELECT COUNT(*), SUM(c), AVG(c), MIN(c), MAX(c) FROM t WHERE ...
    SELECT g, SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 1 ORDER BY g
    SELECT a FROM t WHERE c = (SELECT MAX(c) FROM t)
    SELECT a FROM t WHERE b IN (SELECT name FROM u WHERE flag = TRUE)

Expressions: literals (incl. scientific-notation floats), columns, ``?``
parameters, arithmetic ``+ - * /``, comparisons, ``AND OR NOT``,
``IN (...)``, ``BETWEEN``, ``IS [NOT] NULL``, ``LIKE`` with ``%``/``_``
wildcards.  :mod:`repro.sql.render` turns ASTs back into SQL text and
:func:`repro.storage.engine.Database.explain` reports access paths.
"""

from repro.sql.executor import Result, execute
from repro.sql.parser import parse, parse_cached
from repro.sql.render import render

__all__ = ["parse", "parse_cached", "execute", "render", "Result"]
