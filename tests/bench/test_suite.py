"""Unified suite runner: envelope validation, tolerance bands, CLI.

Band/validation logic is unit-tested on synthetic envelopes (no sim
runs); one real canonical point (micro_ops, the cheapest) exercises the
benchmarks/-loading path end to end.  The negative test — an injected
synthetic slowdown must trip the bands — runs through ``run_suite``
with a stubbed measurement, exactly the path the CI lane drives.
"""

import json

import pytest

import repro.bench.suite as suite
from repro.bench.suite import (
    BENCHES,
    compare_result,
    git_meta,
    run_bench,
    run_suite,
    validate_result,
)


def envelope(metrics=None, profile="default", **overrides):
    if profile == "default":
        profile = {
            "schema": 1,
            "n_profiles": 3,
            "statuses": {"txn:ok": 3},
            "updates": {
                "n": 3,
                "total_ms": {"mean": 10.0, "p50": 9.0, "p95": 14.0},
                "phases": {"commit": {"mean_ms": 5.0}},
                "tail": {"n": 1, "dominant_phase": "commit", "phase_ms": {}},
                "max_attribution_error": 0.0,
            },
        }
    out = {
        "bench": "batching",
        "schema": 1,
        "quick": True,
        "seed": 0,
        "config": {"seed": 0},
        "git": {"commit": "abc", "branch": "main", "dirty": False},
        "metrics": metrics or {"throughput_tps": 100.0, "p95_ms": 20.0},
        "profile": profile,
    }
    out.update(overrides)
    return out


# ----------------------------------------------------------------- validation


def test_validate_accepts_good_envelope():
    assert validate_result(envelope()) == []


def test_validate_flags_nan_and_missing_keys():
    bad = envelope(metrics={"p95_ms": float("nan")})
    errors = validate_result(bad)
    assert any("strict JSON" in e for e in errors)
    assert any("no numeric metrics" in e for e in errors)
    incomplete = envelope()
    del incomplete["git"]
    assert any("git" in e for e in validate_result(incomplete))


def test_validate_enforces_attribution_error_bound():
    bad = envelope()
    bad["profile"]["updates"]["max_attribution_error"] = 0.05  # > 1%
    assert any("attribution error" in e for e in validate_result(bad))
    unattributed = envelope()
    unattributed["profile"]["updates"]["phases"] = {}
    assert any(
        "no phase attribution" in e for e in validate_result(unattributed)
    )


# ---------------------------------------------------------------------- bands


def test_compare_within_band_passes():
    base = envelope(metrics={"throughput_tps": 100.0})
    cur = envelope(metrics={"throughput_tps": 108.0})  # +8% < 15%
    assert compare_result("batching", cur, base) == []


def test_compare_flags_out_of_band_both_directions():
    base = envelope(metrics={"throughput_tps": 100.0})
    for moved in (50.0, 200.0):  # regression AND "improvement" both flag
        violations = compare_result(
            "batching", envelope(metrics={"throughput_tps": moved}), base
        )
        assert [v["kind"] for v in violations] == ["out_of_band"]


def test_compare_flags_missing_metric_and_mode_mismatch():
    base = envelope(metrics={"throughput_tps": 100.0, "p95_ms": 20.0})
    cur = envelope(metrics={"throughput_tps": 100.0})
    kinds = {v["kind"] for v in compare_result("batching", cur, base)}
    assert kinds == {"missing"}
    full_run = envelope(quick=False)
    assert [v["kind"] for v in compare_result("batching", full_run, base)] == [
        "mode_mismatch"
    ]


def test_compare_flags_runtime_mismatch():
    """Wall seconds and sim seconds are different units: a result from
    one runtime never band-checks against a baseline from the other."""
    base = envelope(metrics={"throughput_tps": 100.0})  # implicit sim
    wall = envelope(metrics={"throughput_tps": 100.0})
    wall["runtime"] = "wall"
    assert [v["kind"] for v in compare_result("batching", wall, base)] == [
        "runtime_mismatch"
    ]
    # and a legacy baseline with no runtime key means sim
    sim_result = envelope(metrics={"throughput_tps": 100.0})
    sim_result["runtime"] = "sim"
    assert compare_result("batching", sim_result, base) == []


def test_micro_ops_wall_clock_band_is_wide():
    base = envelope(metrics={"indexed_us_depth1": 2.0})
    cur = envelope(metrics={"indexed_us_depth1": 7.0})  # 3.5x: machine noise
    assert compare_result("micro_ops", cur, base) == []


# ------------------------------------------------------------- orchestration


@pytest.fixture
def stub_bench(monkeypatch):
    """Replace the measurement with a canned envelope; keep the rest."""
    state = {"metrics": {"throughput_tps": 100.0, "p95_ms": 20.0}}

    def fake_run_bench(name, quick=True, bench_dir=None):
        return envelope(bench=name, metrics=dict(state["metrics"]))

    monkeypatch.setattr(suite, "run_bench", fake_run_bench)
    return state


def test_run_suite_emits_bench_files_and_baselines(tmp_path, stub_bench):
    report = run_suite(
        ["batching", "contention"],
        quick=True,
        out_dir=tmp_path,
        baseline_dir=tmp_path / "baselines",
        update_baselines=True,
    )
    assert report["ok"]
    for name in ("batching", "contention"):
        emitted = json.loads((tmp_path / f"BENCH_{name}.json").read_text())
        assert emitted["metrics"]["throughput_tps"] == 100.0
        assert (tmp_path / "baselines" / f"BENCH_{name}.json").exists()


def test_run_suite_flags_drift_against_baseline(tmp_path, stub_bench):
    run_suite(
        ["batching"],
        out_dir=tmp_path,
        baseline_dir=tmp_path / "baselines",
        update_baselines=True,
    )
    stub_bench["metrics"]["throughput_tps"] = 10.0  # 10x regression
    report = run_suite(
        ["batching"], out_dir=tmp_path, baseline_dir=tmp_path / "baselines"
    )
    assert not report["ok"]
    violations = report["results"]["batching"]["violations"]
    assert violations and violations[0]["metric"] == "throughput_tps"


def test_injected_slowdown_trips_the_bands(tmp_path, stub_bench):
    """The CI negative test: x10 metrics must violate every band."""
    run_suite(
        ["batching"],
        out_dir=tmp_path,
        baseline_dir=tmp_path / "baselines",
        update_baselines=True,
    )
    report = run_suite(
        ["batching"],
        out_dir=tmp_path,
        baseline_dir=tmp_path / "baselines",
        inject_slowdown=["batching"],
    )
    assert not report["ok"]
    flagged = {v["metric"] for v in report["results"]["batching"]["violations"]}
    assert flagged == {"throughput_tps", "p95_ms"}
    emitted = json.loads((tmp_path / "BENCH_batching.json").read_text())
    assert emitted["config"]["injected_slowdown"] == 10.0


def test_run_suite_rejects_unknown_bench(tmp_path):
    with pytest.raises(KeyError):
        run_suite(["nope"], out_dir=tmp_path)


def test_cli_list_and_check_exit_codes(tmp_path, stub_bench, capsys):
    assert suite.main(["--list"]) == 0
    assert "batching" in capsys.readouterr().out
    args = [
        "--quick",
        "--only",
        "batching",
        "--out",
        str(tmp_path),
        "--baseline-dir",
        str(tmp_path / "baselines"),
    ]
    # no committed baseline: fine without --check, fatal with it
    assert suite.main(args) == 0
    assert suite.main(args + ["--check"]) == 1
    assert suite.main(args + ["--update-baselines"]) == 0
    assert suite.main(args + ["--check"]) == 0
    assert (tmp_path / "bench_suite_report.json").exists()


# ----------------------------------------------------------------- end to end


def test_git_meta_stamps_commit():
    meta = git_meta()
    assert set(meta) == {"commit", "branch", "dirty"}
    assert meta["commit"] is None or len(meta["commit"]) == 40


def test_micro_ops_canonical_point_for_real():
    """Cheapest real bench: loads benchmarks/bench_micro_ops.py by path."""
    result = run_bench("micro_ops", quick=True)
    assert result["bench"] == "micro_ops"
    assert validate_result(result) == []
    assert result["metrics"]["indexed_flatness_256_over_1"] > 0
    assert result["profile"] is None


def test_run_sirep_profile_extras():
    """``profile=True`` folds the phase attribution into extras."""
    from repro.bench.harness import run_sirep
    from repro.workloads.micro import make_mixed_workload

    point = run_sirep(
        make_mixed_workload(read_weight=0.3),
        80.0,
        n_replicas=3,
        duration=2.0,
        warmup=0.5,
        seed=0,
        profile=True,
    )
    updates = point.extras["profile"]["updates"]
    assert updates["n"] > 0
    assert updates["phases"]
    assert updates["max_attribution_error"] <= 0.01


def test_bench_registry_names_match_issue():
    assert set(BENCHES) == {
        "batching",
        "contention",
        "read_scaling",
        "shard_scaling",
        "recovery",
        "micro_ops",
        "realtime",
    }


def test_wall_benches_excluded_from_default_sweep():
    """The default (no ``names``) sweep is the deterministic sim set;
    wall-clock benches only run when explicitly requested."""
    from repro.bench.suite import WALL_BENCHES

    assert WALL_BENCHES == {"realtime"}
    assert WALL_BENCHES < set(BENCHES)
