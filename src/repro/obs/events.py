"""Structured protocol-milestone event log with bounded retention.

Counters say *how often*, the event log says *what happened, when, to
which transaction*: validation passes/aborts, view changes, recovery
state transfers, failover inquiries.  Events are plain dicts stamped
with simulated time, retained in a bounded ring (old milestones age
out), and exportable as JSONL — one JSON object per line, the schema
documented in DESIGN §"Observability".

Every event carries at least::

    {"t": <sim seconds>, "event": <kind>}

plus kind-specific fields (``replica``, ``gid``, ``outcome``, ...).
Per-kind totals survive ring eviction in :attr:`EventLog.counts`.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Optional, Union

from repro.obs.metrics import sanitize


class EventLog:
    """Bounded, sim-time-stamped log of protocol milestones."""

    def __init__(self, sim, capacity: int = 10_000):
        self.sim = sim
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        #: per-kind totals over the whole run (eviction-proof)
        self.counts: dict[str, int] = {}
        self.emitted = 0

    def emit(self, event: str, **fields) -> dict:
        row = {"t": self.sim.now, "event": event, **fields}
        self._ring.append(row)
        self.counts[event] = self.counts.get(event, 0) + 1
        self.emitted += 1
        return row

    def __len__(self) -> int:
        return len(self._ring)

    def tail(self, n: Optional[int] = None) -> list[dict]:
        """The most recent ``n`` events (all retained ones by default)."""
        rows = list(self._ring)
        return rows if n is None else rows[-n:]

    def of_kind(self, event: str) -> list[dict]:
        return [row for row in self._ring if row["event"] == event]

    # -- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Retained events as JSONL (strict JSON: NaN sanitised first)."""
        return "\n".join(
            json.dumps(sanitize(row), allow_nan=False) for row in self._ring
        )

    def dump(self, target: Union[str, IO[str]]) -> int:
        """Write the retained events to a path or file object.

        Returns the number of events written.
        """
        text = self.to_jsonl()
        if hasattr(target, "write"):
            target.write(text + ("\n" if text else ""))
        else:
            with open(target, "w") as handle:
                handle.write(text + ("\n" if text else ""))
        return len(self._ring)
