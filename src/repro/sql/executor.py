"""Statement execution against the MVCC engine.

The executor is a simulation coroutine because write statements may block
on row locks.  Reads are pure snapshot reads and never block (the whole
point of SI, §1).

Access paths: point lookup on primary key equality, index lookup on an
indexed column equality/IN, else full scan; joins are nested-loop with an
index/pk inner lookup when available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.errors import SQLError
from repro.sql import ast
from repro.sql.expressions import equality_lookups, evaluate


@dataclass
class Result:
    """Outcome of one statement."""

    kind: str
    rows: Optional[list[dict]] = None  # None for DML/DDL
    columns: tuple = ()
    rowcount: int = 0  # returned rows for SELECT, affected rows for DML
    rows_examined: int = 0
    rows_written: int = 0
    scalars: list = field(default_factory=list)

    def scalar(self) -> Any:
        """First column of the first row (aggregates, point reads)."""
        if not self.rows:
            return None
        first = self.rows[0]
        return first[self.columns[0]] if self.columns else next(iter(first.values()))


def execute(db, txn, statement, params: tuple) -> Generator[Any, Any, Result]:
    """Dispatch one parsed statement."""
    examined_before = txn.rows_examined
    statement = _bind_statement_subqueries(db, txn, statement, params)
    if statement.kind == "select":
        result = _select(db, txn, statement, params)
    elif statement.kind == "insert":
        result = yield from _insert(db, txn, statement, params)
    elif statement.kind == "update":
        result = yield from _update(db, txn, statement, params)
    elif statement.kind == "delete":
        result = yield from _delete(db, txn, statement, params)
    elif statement.kind == "create_table":
        result = _create_table(db, statement)
    elif statement.kind == "create_index":
        result = _create_index(db, statement)
    else:
        raise SQLError(f"unsupported statement kind {statement.kind!r}")
    result.rows_examined = txn.rows_examined - examined_before
    return result


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


def _create_table(db, statement: ast.CreateTable) -> Result:
    from repro.storage.catalog import ColumnDef, TableSchema

    schema = TableSchema(
        name=statement.table,
        columns=tuple(
            ColumnDef(
                c.name,
                c.type,
                primary_key=c.primary_key,
                not_null=c.not_null,
                references=c.references,
            )
            for c in statement.columns
        ),
    )
    db.create_table(schema)
    return Result(kind="create_table")


def _create_index(db, statement: ast.CreateIndex) -> Result:
    db.create_index(statement.table, statement.column)
    return Result(kind="create_index")


# ---------------------------------------------------------------------------
# Uncorrelated subqueries: bound to values once per statement
# ---------------------------------------------------------------------------


def _bind_statement_subqueries(db, txn, statement, params: tuple):
    """Replace ``(SELECT ...)`` expressions in WHERE clauses by their
    values.  Subqueries are uncorrelated: evaluated once, on the same
    snapshot as the enclosing statement."""
    import dataclasses

    if statement.kind not in ("select", "update", "delete"):
        return statement
    if getattr(statement, "where", None) is None:
        return statement
    bound = _bind_expr(db, txn, statement.where, params)
    if bound is statement.where:
        return statement
    return dataclasses.replace(statement, where=bound)


def _bind_expr(db, txn, expr: Any, params: tuple) -> Any:
    if isinstance(expr, ast.Subquery):
        values = _run_subquery(db, txn, expr.select, params)
        if len(values) > 1:
            raise SQLError("scalar subquery returned more than one row")
        return ast.Literal(values[0] if values else None)
    if isinstance(expr, ast.InList):
        if len(expr.items) == 1 and isinstance(expr.items[0], ast.Subquery):
            values = _run_subquery(db, txn, expr.items[0].select, params)
            return ast.InList(
                expr.expr, tuple(ast.Literal(v) for v in values), expr.negated
            )
        return expr
    if isinstance(expr, ast.BinOp):
        left = _bind_expr(db, txn, expr.left, params)
        right = _bind_expr(db, txn, expr.right, params)
        if left is expr.left and right is expr.right:
            return expr
        return ast.BinOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = _bind_expr(db, txn, expr.operand, params)
        if operand is expr.operand:
            return expr
        return ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.Between):
        low = _bind_expr(db, txn, expr.low, params)
        high = _bind_expr(db, txn, expr.high, params)
        inner = _bind_expr(db, txn, expr.expr, params)
        if low is expr.low and high is expr.high and inner is expr.expr:
            return expr
        return ast.Between(inner, low, high, expr.negated)
    return expr


def _run_subquery(db, txn, select: "ast.Select", params: tuple) -> list:
    """Run an uncorrelated single-column subquery; returns its values."""
    bound = _bind_statement_subqueries(db, txn, select, params)
    result = _select(db, txn, bound, params)
    if len(result.columns) != 1:
        raise SQLError("subquery must return exactly one column")
    column = result.columns[0]
    return [row[column] for row in result.rows]


# ---------------------------------------------------------------------------
# Row sourcing (shared by SELECT / UPDATE / DELETE)
# ---------------------------------------------------------------------------


def _column_matcher(table, alias: Optional[str]) -> Callable[[ast.Column], Optional[str]]:
    names = set(table.schema.column_names)
    aliases = {table.name}
    if alias:
        aliases.add(alias)

    def match(col: ast.Column) -> Optional[str]:
        if col.table is not None and col.table not in aliases:
            return None
        return col.name if col.name in names else None

    return match


def choose_path(table, alias, where, params) -> tuple:
    """The access path ``_candidate_rows`` will take (EXPLAIN surface).

    Returns ``("pk", n_keys)``, ``("index", column, n_keys)``, or
    ``("scan",)``.
    """
    lookups = equality_lookups(where, params, _column_matcher(table, alias))
    pk_column = table.schema.pk_column
    if pk_column in lookups:
        return ("pk", len(set(lookups[pk_column])))
    for column, values in lookups.items():
        if all(table.index_candidates(column, v) is not None for v in values):
            return ("index", column, len(values))
    return ("scan",)


def _candidate_rows(db, txn, table, alias, where, params, locating=False):
    """Yield (pk, values) via the best access path for ``where``.

    ``locating`` (pk path only) marks the reads as target lookups rather
    than value dependencies — see :meth:`Database.read_row`.  Index and
    scan paths ignore it: rows they surface were chosen by examining
    values, so they stay ordinary (dependent) reads.
    """
    lookups = equality_lookups(where, params, _column_matcher(table, alias))
    pk_column = table.schema.pk_column
    if pk_column in lookups:
        seen = set()
        for pk in lookups[pk_column]:
            if pk in seen:
                continue
            seen.add(pk)
            txn.rows_examined += 1
            values = db.read_row(txn, table, pk, locating=locating)
            if values is not None:
                yield pk, values
        # Rows this txn inserted are reachable via read_row above already.
        return
    for column, values in lookups.items():
        candidates: set = set()
        usable = True
        for value in values:
            pks = table.index_candidates(column, value)
            if pks is None:
                usable = False
                break
            candidates.update(pks)
        if usable:
            # Own inserted rows may not be indexed yet; add them.
            for key, op in txn.writes.items():
                if key[0] == table.name and op.values is not None:
                    candidates.add(key[1])
            yield from db.scan(txn, table, candidates=sorted(candidates, key=repr))
            return
    yield from db.scan(txn, table)


def _single_table_matches(db, txn, table, alias, where, params, locating=False):
    """Materialise matching (pk, values) pairs of one table.

    With ``locating`` set, a residual predicate that examines a non-pk
    column value demotes that row back to a dependent read: the match
    decision then hinges on row content, so the write is not blind.
    """
    matcher = _column_matcher(table, alias)
    pk_column = table.schema.pk_column
    matches = []
    for pk, values in _candidate_rows(
        db, txn, table, alias, where, params, locating=locating
    ):
        if where is None:
            matches.append((pk, values))
            continue

        def lookup(col: ast.Column, _pk=pk, _values=values) -> Any:
            name = matcher(col)
            if name is None:
                raise SQLError(f"unknown column {col.display!r}")
            if locating and name != pk_column:
                txn.dependent_reads.add((table.name, _pk))
            return _values[name]

        if evaluate(where, lookup, params):
            matches.append((pk, values))
    return matches


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


class _JoinedRow:
    """Namespace mapping (alias or table) -> row dict for joined scans."""

    __slots__ = ("frames",)

    def __init__(self, frames: dict[str, dict]):
        self.frames = frames

    def lookup(self, col: ast.Column) -> Any:
        if col.table is not None:
            frame = self.frames.get(col.table)
            if frame is None:
                raise SQLError(f"unknown table qualifier {col.table!r}")
            if col.name not in frame:
                raise SQLError(f"unknown column {col.display!r}")
            return frame[col.name]
        hits = [frame for frame in self.frames.values() if col.name in frame]
        if not hits:
            raise SQLError(f"unknown column {col.name!r}")
        if len(hits) > 1:
            raise SQLError(f"ambiguous column {col.name!r}")
        return hits[0][col.name]


def _select(db, txn, statement: ast.Select, params: tuple) -> Result:
    table = db.catalog.table(statement.table)
    base_key = statement.alias or statement.table

    if not statement.joins:
        joined = [
            _JoinedRow({base_key: values})
            for _pk, values in _single_table_matches(
                db, txn, table, statement.alias, statement.where, params
            )
        ]
    else:
        # Equality conjuncts on the base table narrow the scan; they give
        # a superset of the matches, and the full WHERE filters after the
        # joins.
        joined = [
            _JoinedRow({base_key: values})
            for _pk, values in _candidate_rows(
                db, txn, table, statement.alias, statement.where, params
            )
        ]
        for join in statement.joins:
            joined = _apply_join(db, txn, joined, join)
        if statement.where is not None:
            joined = [
                row
                for row in joined
                if evaluate(statement.where, row.lookup, params)
            ]

    if statement.is_aggregate or statement.group_by:
        return _aggregate(statement, joined, params)

    if statement.distinct:
        # SQL semantics: project, dedupe, then ORDER BY (on output
        # columns) and LIMIT.
        columns, rows = _project(statement, joined, params)
        seen = set()
        unique = []
        for row in rows:
            key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
        for item in reversed(statement.order_by):
            name = item.column.name
            if rows and name not in rows[0]:
                raise SQLError(
                    f"ORDER BY column {name!r} must be in the DISTINCT output"
                )
            rows.sort(key=lambda r, n=name: _sort_key(r[n]), reverse=item.descending)
        if statement.limit is not None:
            limit = evaluate(statement.limit, lambda c: None, params)
            rows = rows[: int(limit)]
        return Result(kind="select", rows=rows, columns=columns, rowcount=len(rows))

    if statement.order_by:
        for item in reversed(statement.order_by):
            joined.sort(
                key=lambda row, col=item.column: _sort_key(row.lookup(col)),
                reverse=item.descending,
            )
    if statement.limit is not None:
        limit = evaluate(statement.limit, lambda c: None, params)
        joined = joined[: int(limit)]

    columns, rows = _project(statement, joined, params)
    return Result(kind="select", rows=rows, columns=columns, rowcount=len(rows))


def _sort_key(value: Any) -> tuple:
    # NULLs last on ascending order, and mixed types grouped by type name.
    return (value is None, type(value).__name__, value if value is not None else 0)


def _apply_join(db, txn, joined: list, join: ast.Join) -> list:
    inner = db.catalog.table(join.table)
    inner_key = join.alias or join.table
    inner_matcher = _column_matcher(inner, join.alias)
    # Decide which side of ON refers to the inner table.
    if inner_matcher(join.on_right) is not None:
        outer_col, inner_col = join.on_left, join.on_right
    elif inner_matcher(join.on_left) is not None:
        outer_col, inner_col = join.on_right, join.on_left
    else:
        raise SQLError(f"join ON does not reference {join.table!r}")
    inner_name = inner_matcher(inner_col)
    out = []
    use_pk = inner_name == inner.schema.pk_column
    null_frame = {name: None for name in inner.schema.column_names}
    for row in joined:
        value = row.lookup(outer_col)
        if value is None:
            matches = []
        elif use_pk:
            txn.rows_examined += 1
            values = db.read_row(txn, inner, value)
            matches = [values] if values is not None else []
        else:
            candidates = inner.index_candidates(inner_name, value)
            matches = [
                vals
                for _pk, vals in db.scan(txn, inner, candidates=candidates)
                if vals[inner_name] == value
            ]
        if not matches and join.left_outer:
            matches = [null_frame]
        for values in matches:
            frames = dict(row.frames)
            frames[inner_key] = values
            out.append(_JoinedRow(frames))
    return out


def _project(statement: ast.Select, joined: list, params: tuple):
    if statement.columns == ("*",):
        rows = []
        for row in joined:
            flat: dict = {}
            for frame in row.frames.values():
                for name, value in frame.items():
                    flat.setdefault(name, value)
            rows.append(flat)
        columns = tuple(rows[0].keys()) if rows else ()
        return columns, rows
    columns = []
    for clause in statement.columns:
        if clause.alias:
            columns.append(clause.alias)
        elif isinstance(clause.expr, ast.Column):
            columns.append(clause.expr.name)
        else:
            columns.append(f"col{len(columns)}")
    rows = []
    for row in joined:
        rows.append(
            {
                name: evaluate(clause.expr, row.lookup, params)
                for name, clause in zip(columns, statement.columns)
            }
        )
    return tuple(columns), rows


def _eval_aggregate(expr: ast.Aggregate, members: list, params: tuple) -> Any:
    if expr.func == "COUNT" and expr.arg is None:
        return len(members)
    samples = [evaluate(expr.arg, row.lookup, params) for row in members]
    samples = [s for s in samples if s is not None]
    if expr.func == "COUNT":
        return len(samples)
    if not samples:
        return None
    if expr.func == "SUM":
        return sum(samples)
    if expr.func == "AVG":
        return sum(samples) / len(samples)
    if expr.func == "MIN":
        return min(samples)
    if expr.func == "MAX":
        return max(samples)
    raise SQLError(f"unknown aggregate {expr.func!r}")


def _fold_aggregates(expr: Any, members: list, params: tuple) -> Any:
    """Replace Aggregate nodes by their computed value (for HAVING)."""
    if isinstance(expr, ast.Aggregate):
        return ast.Literal(_eval_aggregate(expr, members, params))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _fold_aggregates(expr.left, members, params),
            _fold_aggregates(expr.right, members, params),
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _fold_aggregates(expr.operand, members, params))
    return expr


def _aggregate(statement: ast.Select, joined: list, params: tuple) -> Result:
    """Aggregates, with or without GROUP BY, plus HAVING/ORDER BY/LIMIT."""
    if statement.group_by:
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row in joined:
            key = tuple(row.lookup(col) for col in statement.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        grouped = [(key, groups[key]) for key in order]
    else:
        grouped = [((), joined)]

    grouped_names = {col.name for col in statement.group_by}
    specs: list[tuple[str, str, Any]] = []
    for i, clause in enumerate(statement.columns):
        expr = clause.expr
        if isinstance(expr, ast.Aggregate):
            specs.append((clause.alias or f"{expr.func.lower()}{i}", "agg", expr))
        elif isinstance(expr, ast.Column):
            if expr.name not in grouped_names:
                raise SQLError(
                    f"column {expr.display!r} must appear in GROUP BY "
                    "or be inside an aggregate"
                )
            specs.append((clause.alias or expr.name, "group", expr))
        else:
            raise SQLError("projection must be a column or an aggregate here")
    columns = tuple(name for name, _k, _e in specs)

    rows = []
    for _key, members in grouped:
        out: dict = {}
        for name, kind, expr in specs:
            if kind == "group":
                out[name] = evaluate(expr, members[0].lookup, params)
            else:
                out[name] = _eval_aggregate(expr, members, params)
        if statement.having is not None:
            folded = _fold_aggregates(statement.having, members, params)

            def lookup(col: ast.Column, _out=out, _members=members) -> Any:
                if col.name in _out:
                    return _out[col.name]
                return _members[0].lookup(col)

            if not evaluate(folded, lookup, params):
                continue
        rows.append(out)

    if statement.order_by:
        for item in reversed(statement.order_by):
            name = item.column.name
            if rows and name not in rows[0]:
                raise SQLError(
                    f"ORDER BY column {name!r} is not in the grouped output"
                )
            rows.sort(key=lambda r, n=name: _sort_key(r[n]), reverse=item.descending)
    if statement.limit is not None:
        limit = evaluate(statement.limit, lambda c: None, params)
        rows = rows[: int(limit)]
    return Result(kind="select", rows=rows, columns=columns, rowcount=len(rows))


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


def _insert(db, txn, statement: ast.Insert, params: tuple):
    table = db.catalog.table(statement.table)
    written = 0
    for row_exprs in statement.rows:
        values = {
            column: evaluate(expr, lambda c: None, params)
            for column, expr in zip(statement.columns, row_exprs)
        }
        yield from db.stage_insert(txn, table, values)
        written += 1
    return Result(kind="insert", rowcount=written, rows_written=written)


def _update(db, txn, statement: ast.Update, params: tuple):
    table = db.catalog.table(statement.table)
    pk_column = table.schema.pk_column
    # A write is *blind* when the after image owes nothing to the row:
    # every non-pk column assigned (no old values survive into it), the
    # target reachable without examining values (pk path — checked by
    # _candidate_rows), and no assignment expression reading the row
    # (checked per row below).  Blind keys stay out of dependent_reads,
    # which is what certification salvage keys off.
    assigned = {column for column, _expr in statement.assignments}
    covers = assigned >= {
        name for name in table.schema.column_names if name != pk_column
    }
    matches = _single_table_matches(
        db, txn, table, None, statement.where, params, locating=covers
    )
    written = 0
    for pk, values in matches:
        reads_row = False

        def lookup(col: ast.Column, _values=values) -> Any:
            nonlocal reads_row
            if col.name not in _values:
                raise SQLError(f"unknown column {col.display!r}")
            reads_row = True
            return _values[col.name]

        new_values = dict(values)
        for column, expr in statement.assignments:
            if column == pk_column:
                raise SQLError("updating the primary key is not supported")
            new_values[column] = evaluate(expr, lookup, params)
        if reads_row and covers:
            txn.dependent_reads.add((table.name, pk))
        yield from db.stage_update(
            txn, table, pk, new_values, blind=covers and not reads_row
        )
        written += 1
    return Result(kind="update", rowcount=written, rows_written=written)


def _delete(db, txn, statement: ast.Delete, params: tuple):
    table = db.catalog.table(statement.table)
    matches = _single_table_matches(db, txn, table, None, statement.where, params)
    written = 0
    for pk, _values in matches:
        yield from db.stage_delete(txn, table, pk)
        written += 1
    return Result(kind="delete", rowcount=written, rows_written=written)
