"""Sharded SI-Rep: several replication groups inside one simulator.

A :class:`ShardedCluster` assembles ``n_groups`` independent SRCA-Rep
deployments (each a full :class:`~repro.core.cluster.SIRepCluster`) on a
**shared** simulator and LAN.  Each group owns a disjoint table
partition (see :class:`~repro.shard.partition.Partitioner`) and runs the
paper's protocol unchanged within the group: writesets multicast on the
group's own bus, certification order is per-group, and the update
capacity of the whole deployment scales with the number of groups
because no replica ever sees another group's writesets.

Clients enter through the :class:`~repro.shard.router.ShardRouter`,
which keeps update transactions single-group and scatter-gathers
cross-shard read-only transactions over per-group snapshots stamped
with a group-CSN vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.core.cluster import ClusterConfig, SIRepCluster
from repro.durable.store import DurabilityConfig, DurabilityStore
from repro.errors import PlacementError, SQLError
from repro.gcs import DiscoveryService, GcsConfig, GroupBus
from repro.net import LatencyModel, Network
from repro.obs import FlightRecorder, Observability, Tracer, sanitize
from repro.reader import ReaderConfig
from repro.shard.partition import Partitioner
from repro.shard.router import ShardRouter
from repro.si.onecopy import OneCopyReport
from repro.sim import Simulator
from repro.sql.parser import parse_cached
from repro.storage.engine import CostModel


@dataclass
class ShardConfig:
    """Shape of one sharded deployment."""

    n_groups: int = 2
    replicas_per_group: int = 3
    #: True = SRCA-Rep within each group; False = SRCA-Opt
    hole_sync: bool = True
    #: per-replica group commit within each group (see GroupCommitLog)
    group_commit: bool = False
    #: SCAR-style abort salvage within each group (see ClusterConfig)
    salvage: bool = False
    seed: int = 0
    gcs: GcsConfig = field(default_factory=GcsConfig)
    net_base_latency: float = 0.0002
    net_jitter: float = 0.0001
    #: canonical per-replica-index factory (see ClusterConfig.cost_model);
    #: the index is the replica's position within its group
    cost_model: Optional[Callable[[int], CostModel]] = None
    with_disk: bool = False
    cpu_servers: int = 1
    trace: bool = False
    #: one shared repro.obs surface across every group: the groups write
    #: into a single registry/event log, one sampler probes all gauges
    obs: bool = False
    sampler_interval: float = 0.25
    #: one shared causal-span Tracer across the groups AND the router,
    #: so a cross-shard transaction's router hops and per-group branches
    #: stitch into a single trace
    span_trace: bool = False
    #: per-group online 1-copy-SI monitors (certification order is
    #: per-group, so each group gets its own streaming Def. 3 check)
    monitor: bool = False
    monitor_interval: float = 0.05
    #: one shared crash flight recorder across the groups
    flight: bool = False
    flight_dir: Optional[str] = None
    max_sessions: Optional[int] = None
    #: "hash" (balanced, deterministic) or "explicit" (requires table_map)
    partition: str = "hash"
    table_map: Optional[dict[str, int]] = None
    #: attach the durability subsystem to every group: per-replica
    #: writeset logs (names are globally unique via the group prefix),
    #: per-group stability watermarks, delta catch-up recovery
    durable: bool = False
    #: durability knobs shared by all groups (implies ``durable``)
    durability: Optional[DurabilityConfig] = None
    #: lazy read replicas attached to each group's certified feed
    #: (named ``G<i>-Rr<j>``), registered under ``role="read"`` on that
    #: group's discovery service
    read_replicas_per_group: int = 0
    #: read-tier knobs shared by every group's readers
    reader: Optional[ReaderConfig] = None


@dataclass
class SnapshotStamp:
    """One committed routed transaction's snapshot vector (audit log)."""

    connection_id: int
    vector: dict[int, int]
    #: group -> replica address that served the branch; monotonicity is
    #: audited per served replica (a failover may legitimately land on a
    #: replica whose commit counter trails the crashed one's)
    addresses: dict[int, str]
    cross_shard: bool
    at: float


@dataclass
class ShardedReport:
    """Per-group 1-copy-SI audits plus the cross-shard freshness audit."""

    groups: dict[str, OneCopyReport]
    freshness_violations: list[str]

    @property
    def ok(self) -> bool:
        return (
            all(report.ok for report in self.groups.values())
            and not self.freshness_violations
        )

    def __str__(self) -> str:
        parts = [
            f"{name}: {'OK' if report.ok else report.violations}"
            for name, report in self.groups.items()
        ]
        parts.append(
            "freshness: "
            + ("OK" if not self.freshness_violations else str(self.freshness_violations))
        )
        return "; ".join(parts)


class ShardedCluster:
    """A sharded SI-Rep deployment: groups + partitioner + router."""

    def __init__(
        self,
        config: Optional[ShardConfig] = None,
        *,
        durability: Optional[DurabilityStore] = None,
        cold_start: bool = False,
    ):
        self.config = config or ShardConfig()
        cfg = self.config
        self.sim = Simulator(seed=cfg.seed)
        self.network = Network(
            self.sim,
            latency=LatencyModel(
                base=cfg.net_base_latency,
                jitter=cfg.net_jitter,
                rng=self.sim.rng("net"),
            ),
        )
        self.partitioner = Partitioner(
            cfg.n_groups,
            policy=cfg.partition,
            table_map=cfg.table_map,
            seed=cfg.seed,
        )
        self.obs = (
            Observability(self.sim, sampler_interval=cfg.sampler_interval)
            if cfg.obs
            else None
        )
        self.tracer = Tracer(self.sim) if cfg.span_trace else None
        self.flight = (
            FlightRecorder(
                self.sim,
                tracer=self.tracer,
                events=self.obs.events if self.obs is not None else None,
                directory=cfg.flight_dir,
            )
            if cfg.flight
            else None
        )
        #: ONE store shared by every group — replica names are globally
        #: unique (group prefix), so each group's logs coexist under one
        #: directory and a single handle suffices for cold restart
        self.durable_store = durability if durability is not None else (
            DurabilityStore(cfg.durability)
            if (cfg.durable or cfg.durability is not None)
            else None
        )
        self.groups: list[SIRepCluster] = []
        for index in range(cfg.n_groups):
            group_cfg = ClusterConfig(
                n_replicas=cfg.replicas_per_group,
                hole_sync=cfg.hole_sync,
                group_commit=cfg.group_commit,
                salvage=cfg.salvage,
                seed=cfg.seed,
                gcs=cfg.gcs,
                cost_model=cfg.cost_model,
                with_disk=cfg.with_disk,
                cpu_servers=cfg.cpu_servers,
                trace=cfg.trace,
                monitor=cfg.monitor,
                monitor_interval=cfg.monitor_interval,
                max_sessions=cfg.max_sessions,
                replica_prefix=f"G{index}-R",
                read_replicas=cfg.read_replicas_per_group,
                reader=cfg.reader,
            )
            self.groups.append(
                SIRepCluster(
                    group_cfg,
                    sim=self.sim,
                    network=self.network,
                    bus=GroupBus(
                        self.sim, config=cfg.gcs, rng_stream=f"gcs-G{index}"
                    ),
                    discovery=DiscoveryService(self.sim),
                    obs=self.obs,
                    tracer=self.tracer,
                    flight=self.flight,
                    durability=self.durable_store,
                    cold_start=cold_start,
                )
            )
        self.router = ShardRouter(self)
        self._snapshot_log: list[SnapshotStamp] = []

    @classmethod
    def cold_restart(
        cls, config: ShardConfig, durability: DurabilityStore
    ) -> "ShardedCluster":
        """Rebuild every group from the shared durability store after a
        full-deployment crash (see :meth:`SIRepCluster.cold_restart`).
        Do NOT re-run ``load_schema``/``bulk_load`` — the per-replica
        genesis records replay them group by group."""
        cluster = cls(config, durability=durability, cold_start=True)
        for group in cluster.groups:
            group._level_after_cold_restart()
        return cluster

    # ------------------------------------------------------------ data loading

    def load_schema(self, ddl_statements: Iterable[str]) -> None:
        """Place each CREATE statement and apply it in the owning group."""
        for sql in ddl_statements:
            statement = parse_cached(sql)
            if statement.kind == "create_table":
                group = self.partitioner.place(statement.table)
            elif statement.kind == "create_index":
                group = self.partitioner.group_of(statement.table)
            else:
                raise SQLError(f"load_schema only accepts CREATE statements: {sql!r}")
            self.groups[group].load_schema([sql])

    def bulk_load(self, table: str, rows: list[dict]) -> None:
        """Seed initial data in the owning group (placement validated)."""
        if not self.partitioner.knows(table):
            raise PlacementError(
                f"bulk load of {table!r} before its CREATE TABLE was placed"
            )
        self.groups[self.partitioner.group_of(table)].bulk_load(table, rows)

    # ----------------------------------------------------------------- clients

    def new_client_host(self, name: Optional[str] = None):
        label = name or self.network.unique_address("shard-client")
        return self.network.register(label)

    def connect(self, host) -> Generator[Any, Any, Any]:
        """Open a routed connection (convenience over ``router.connect``)."""
        connection = yield from self.router.connect(host)
        return connection

    # ------------------------------------------------------------------ faults

    def crash(self, group: int, index: int) -> None:
        """Crash one replica of one group (the group's SRCA-Rep handles it)."""
        self.groups[group].crash(index)

    def recover_replica(
        self,
        group: int,
        index: int,
        donor_index: Optional[int] = None,
        mode: Optional[str] = None,
    ):
        """Recover a crashed replica from a donor within its group."""
        return self.groups[group].recover_replica(
            index, donor_index=donor_index, mode=mode
        )

    def add_replica(self, group: int, donor_index: Optional[int] = None):
        """Elastic online join: grow one group by a replica while the
        whole sharded deployment keeps serving traffic."""
        return self.groups[group].add_replica(donor_index=donor_index)

    def alive_replicas(self) -> list:
        return [r for group in self.groups for r in group.alive_replicas()]

    # ------------------------------------------------------------------ audits

    def record_snapshot_vector(
        self,
        connection_id: int,
        vector: dict[int, int],
        addresses: dict[int, str],
        cross_shard: bool,
    ) -> None:
        """Called by the router when a routed transaction commits."""
        self._snapshot_log.append(
            SnapshotStamp(
                connection_id, dict(vector), dict(addresses), cross_shard, self.sim.now
            )
        )

    @property
    def snapshot_log(self) -> list[SnapshotStamp]:
        return list(self._snapshot_log)

    def snapshot_freshness_report(self) -> list[str]:
        """Audit the recorded snapshot vectors (NMSI-style guarantees).

        Checks, per routed transaction:

        * **validity** — each vector component is a CSN the group has
          actually produced (``<=`` the group's current max commit CSN);
        * **per-connection monotonicity** — successive transactions of
          one connection, while served by the *same* replica of a group,
          never observe an older per-group snapshot than an earlier
          transaction did (session monotonic reads; a failover may move
          the branch to a replica whose commit counter trails, so the
          high-water mark resets when the serving replica changes).

        What is deliberately *not* checked: mutual freshness between the
        components of one vector.  There is no global certification
        order across groups, so a cross-shard read-only transaction sees
        a vector of per-group-consistent — but possibly mutually stale —
        snapshots (non-monotonic snapshot isolation).
        """
        violations: list[str] = []
        max_csn = {
            g: max(node.db.csn for node in group.nodes)
            for g, group in enumerate(self.groups)
        }
        high_water: dict[tuple[int, int], tuple[Optional[str], int]] = {}
        for stamp in self._snapshot_log:
            for group, csn in stamp.vector.items():
                if csn > max_csn[group]:
                    violations.append(
                        f"conn {stamp.connection_id} at t={stamp.at:.6f}: "
                        f"group {group} snapshot csn {csn} exceeds the "
                        f"group's max commit csn {max_csn[group]}"
                    )
                key = (stamp.connection_id, group)
                address = stamp.addresses.get(group)
                seen_address, seen_csn = high_water.get(key, (None, -1))
                if address == seen_address and csn < seen_csn:
                    violations.append(
                        f"conn {stamp.connection_id} at t={stamp.at:.6f}: "
                        f"group {group} snapshot went backwards on replica "
                        f"{address!r} ({csn} after {seen_csn})"
                    )
                if address != seen_address:
                    high_water[key] = (address, csn)
                else:
                    high_water[key] = (address, max(seen_csn, csn))
        return violations

    def one_copy_report(self) -> ShardedReport:
        """Definition-3 audit per group + the cross-shard freshness audit.

        Within a group the unsharded checker applies unchanged (the
        group is a complete SI-Rep deployment over its tables); across
        groups only snapshot-vector guarantees hold, so those are
        audited separately.
        """
        return ShardedReport(
            groups={
                f"G{index}": group.one_copy_report()
                for index, group in enumerate(self.groups)
            },
            freshness_violations=self.snapshot_freshness_report(),
        )

    # ------------------------------------------------------------------- stats

    def total_commits(self) -> int:
        return sum(group.total_commits() for group in self.groups)

    def total_update_commits(self) -> int:
        return sum(
            replica.stats_commits
            for group in self.groups
            for replica in group.replicas
        )

    def total_certification_aborts(self) -> int:
        return sum(group.total_certification_aborts() for group in self.groups)

    def metrics(self) -> dict:
        """Operational snapshot: per-group metrics plus router counters."""
        out = {
            "now": self.sim.now,
            "commits": self.total_commits(),
            "update_commits": self.total_update_commits(),
            "certification_aborts": self.total_certification_aborts(),
            "cross_shard_readonly_commits": self.router.stats_cross_shard_readonly,
            "rejected_cross_shard_writes": self.router.stats_rejected_writes,
            "partition": {
                f"G{index}": self.partitioner.tables_of(index)
                for index in range(self.config.n_groups)
            },
            "groups": {
                f"G{index}": group.metrics()
                for index, group in enumerate(self.groups)
            },
        }
        if self.tracer is not None:
            out["span_trace"] = {
                "started": self.tracer.started,
                "finished": self.tracer.finished_count,
                "open": len(self.tracer.open_spans()),
            }
        if self.obs is not None:
            # the shared surface: gauges of every group's replicas (the
            # per-group prefix disambiguates), one event log, one sampler
            out["obs"] = self.obs.snapshot()
        return sanitize(out)

    def stop(self) -> None:
        for group in self.groups:
            group.stop()
        if self.tracer is not None:
            self.tracer.close_open(status="shutdown")
