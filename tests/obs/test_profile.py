"""Critical-path profiler: attribution over hand-built span trees.

The fixtures here are written by hand (not by running a cluster), so
every expected phase duration is known exactly — the ISSUE-9 acceptance
bound (attribution sums to end-to-end within 1%) is asserted against
them, and the sweep in fact achieves float epsilon.
"""

import json

import pytest

from repro.obs import (
    PHASES,
    ProfileReport,
    compare_reports,
    profile_run,
    profile_spans,
)


def span(
    name,
    trace,
    sid,
    start,
    end,
    parent=None,
    link=None,
    replica="R0",
    status="ok",
    **attrs,
):
    return {
        "name": name,
        "trace_id": trace,
        "span_id": sid,
        "parent_id": parent,
        "link": link,
        "start": start,
        "end": end,
        "replica": replica,
        "status": status,
        "attrs": attrs,
    }


def _only(profiles, kind):
    out = [p for p in profiles if p.kind == kind]
    assert len(out) == 1, profiles
    return out[0]


def update_txn_tree(trace="R0:g1", base=0.0, sid0=1):
    """A full home-replica update life with known phase durations."""
    s = sid0
    return [
        span("txn", trace, s, base + 0.0, base + 0.100),
        span("hole_start_wait", trace, s + 1, base + 0.0, base + 0.010, parent=s),
        span("local_execution", trace, s + 2, base + 0.010, base + 0.030, parent=s),
        span("writeset_extract", trace, s + 3, base + 0.030, base + 0.035, parent=s),
        span("gcs", trace, s + 4, base + 0.035, base + 0.060, parent=s),
        span("gcs_sequencing", trace, s + 5, base + 0.035, base + 0.045, parent=s + 4),
        span("gcs_fanout", trace, s + 6, base + 0.045, base + 0.055, parent=s + 4),
        # zero-length certify verdict -> marker, not an interval
        span("certify", trace, s + 7, base + 0.060, base + 0.060, parent=s),
        span("commit_queue", trace, s + 8, base + 0.060, base + 0.080, parent=s),
        span("commit", trace, s + 9, base + 0.080, base + 0.095, parent=s),
    ]


def test_phases_sum_to_total_exactly():
    profiles = profile_spans(update_txn_tree())
    p = _only(profiles, "txn")
    assert p.total == pytest.approx(0.100)
    # the ISSUE acceptance bound is 1%; the sweep achieves float epsilon
    assert p.attribution_error <= 0.01
    assert p.attribution_error <= 1e-9
    assert sum(p.phases.values()) == pytest.approx(p.total)
    assert p.phases["hole_start_wait"] == pytest.approx(0.010)
    assert p.phases["local_execution"] == pytest.approx(0.025)
    assert p.phases["sequencing"] == pytest.approx(0.010)
    # explicit fanout child + the gcs container's residual tail
    assert p.phases["fanout"] == pytest.approx(0.015)
    assert p.phases["commit_queue"] == pytest.approx(0.020)
    assert p.phases["commit"] == pytest.approx(0.015)
    # 0.095..0.100 is covered by no span
    assert p.phases["other"] == pytest.approx(0.005)
    assert p.replicated
    assert ("certify", 0.060, "ok") in p.markers


def test_overlapping_spans_never_double_count():
    spans = [
        span("txn", "g", 1, 0.0, 0.080),
        span("commit_queue", "g", 2, 0.0, 0.060, parent=1),
        span("commit", "g", 3, 0.040, 0.080, parent=1),
    ]
    p = _only(profile_spans(spans), "txn")
    # the 0.040..0.060 overlap is charged once, to the higher-priority
    # commit_queue; the sum still reconstructs the total exactly
    assert p.phases["commit_queue"] == pytest.approx(0.060)
    assert p.phases["commit"] == pytest.approx(0.020)
    assert sum(p.phases.values()) == pytest.approx(p.total)
    assert p.attribution_error <= 1e-9


def test_aborted_txn_excluded_from_update_aggregate():
    spans = [
        span("txn", "g2", 10, 0.0, 0.030, status="aborted"),
        span("local_execution", "g2", 11, 0.0, 0.020, parent=10),
    ]
    report = ProfileReport(profiles=profile_spans(spans))
    assert report.updates() == []  # not replicated, not ok
    assert report.to_dict()["statuses"] == {"txn:aborted": 1}


def test_rehomed_commit_profiles_home_and_remote_separately():
    """A salvaged/re-homed writeset installs via a remote deliver tree;
    both lives are profiled over their own intervals, never merged."""
    trace = "R0:g3"
    spans = update_txn_tree(trace=trace)
    spans += [
        # remote apply linked into the home gcs span (span_id 5 = gcs)
        span("deliver", trace, 20, 0.055, 0.120, link=5, replica="R2"),
        span("commit_queue", trace, 21, 0.060, 0.090, parent=20, replica="R2"),
        span("apply", trace, 22, 0.090, 0.115, parent=20, replica="R2"),
    ]
    profiles = profile_spans(spans)
    home = _only(profiles, "txn")
    remote = _only(profiles, "deliver")
    # the deliver tree did NOT leak into the home attribution
    assert home.total == pytest.approx(0.100)
    assert sum(home.phases.values()) == pytest.approx(0.100)
    assert remote.replica == "R2"
    assert remote.total == pytest.approx(0.065)
    assert remote.phases["commit_queue"] == pytest.approx(0.030)
    assert remote.phases["commit"] == pytest.approx(0.025)  # apply
    assert remote.attribution_error <= 1e-9


def test_crash_failover_inquiry_is_its_own_root():
    trace = "R1:g9"
    spans = [
        span("txn", trace, 1, 0.0, 0.050, replica="R1", status="crashed"),
        span("local_execution", trace, 2, 0.0, 0.040, parent=1, replica="R1"),
        # the client's outcome inquiry after failover
        span("inquiry", trace, 30, 0.060, 0.075, replica="R2"),
    ]
    profiles = profile_spans(spans)
    assert {p.kind for p in profiles} == {"txn", "inquiry"}
    inquiry = _only(profiles, "inquiry")
    assert inquiry.total == pytest.approx(0.015)
    report = ProfileReport(profiles=profiles)
    assert report.updates() == []  # crashed txn never certified


def test_read_txn_stitches_cross_replica_staleness_wait():
    trace = "read:h1:0"
    spans = [
        span("read_txn", trace, 1, 0.0, 0.050, replica="client"),
        span("read_admission", trace, 2, 0.0, 0.010, parent=1, replica="client"),
        # recorded by the serving read replica, linked (not parented)
        span("staleness_wait", trace, 3, 0.010, 0.022, link=1, replica="Rr1"),
        span("read_serve", trace, 4, 0.022, 0.040, parent=1, replica="client"),
        span("read_commit", trace, 5, 0.040, 0.048, parent=1, replica="client"),
    ]
    p = _only(profile_spans(spans), "read_txn")
    assert p.phases["read_admission"] == pytest.approx(0.010)
    assert p.phases["staleness_wait"] == pytest.approx(0.012)
    assert p.phases["local_execution"] == pytest.approx(0.018)
    assert p.phases["commit"] == pytest.approx(0.008)
    assert p.phases["other"] == pytest.approx(0.002)
    assert p.attribution_error <= 1e-9
    report = ProfileReport(profiles=profile_spans(spans))
    assert report.to_dict()["reads"]["phases"]["staleness_wait"]


def test_route_root_stitches_branch_trees_across_shards():
    spans = [
        span("route", "route:1", 1, 0.0, 0.100, replica="router"),
        span(
            "route_statement",
            "route:1",
            2,
            0.010,
            0.040,
            parent=1,
            replica="router",
            branch_gid="G0-R0:g5",
        ),
        # the branch transaction's own tree (different trace id = gid);
        # its root is scaffolding, its phase spans join the route sweep
        span("txn", "G0-R0:g5", 10, 0.010, 0.090, replica="G0-R0"),
        span("gcs_sequencing", "G0-R0:g5", 11, 0.040, 0.060, parent=10, replica="G0-R0"),
        span("commit", "G0-R0:g5", 12, 0.060, 0.090, parent=10, replica="G0-R0"),
    ]
    profiles = profile_spans(spans)
    route = _only(profiles, "route")
    assert route.phases["local_execution"] == pytest.approx(0.030)
    assert route.phases["sequencing"] == pytest.approx(0.020)
    assert route.phases["commit"] == pytest.approx(0.030)
    assert route.phases["other"] == pytest.approx(0.020)
    assert route.attribution_error <= 1e-9
    # the branch is also profiled as its own txn root, independently
    branch = _only(profiles, "txn")
    assert sum(branch.phases.values()) == pytest.approx(branch.total)


def test_unfinished_roots_are_skipped():
    spans = [
        span("txn", "g7", 1, 0.0, None),  # in-flight at run end
        span("local_execution", "g7", 2, 0.0, 0.020, parent=1),
        span("txn", "g8", 3, 0.0, 0.030),
    ]
    profiles = profile_spans(spans)
    assert [p.trace_id for p in profiles] == ["g8"]


def test_jsonl_source_and_render():
    jsonl = "\n".join(json.dumps(s) for s in update_txn_tree())
    report = profile_run(jsonl, throughput=100.0)
    assert len(report.updates()) == 1
    rendered = report.render(top=1)
    assert "updates" in rendered and "commit_queue" in rendered


def test_compare_reports_phase_deltas():
    before = ProfileReport(profiles=profile_spans(update_txn_tree())).to_dict()
    # the "after" run doubled the commit_queue wait
    slow = update_txn_tree()
    slow[8]["end"] = 0.100  # commit_queue 0.060..0.100
    slow[9]["start"], slow[9]["end"] = 0.100, 0.115
    slow[0]["end"] = 0.120
    after = ProfileReport(profiles=profile_spans(slow)).to_dict()
    delta = compare_reports({"profile": before}, after)  # BENCH or raw shape
    row = delta["phases"]["commit_queue"]
    assert row["after_ms"] == pytest.approx(40.0)
    assert row["before_ms"] == pytest.approx(20.0)
    assert row["ratio"] == pytest.approx(2.0)


def test_aggregate_tail_and_phase_order():
    profiles = []
    for i in range(20):
        # one straggler dominated by commit_queue, the rest uniform
        stretch = 0.200 if i == 19 else 0.0
        tree = update_txn_tree(trace=f"R0:g{i}", base=i * 1.0, sid0=100 * i + 1)
        if stretch:
            tree[8]["end"] += stretch  # commit_queue
            tree[9]["start"] += stretch
            tree[9]["end"] += stretch
            tree[0]["end"] += stretch
        profiles.extend(tree)
    report = ProfileReport(profiles=profile_spans(profiles))
    stats = report.to_dict()["updates"]
    assert stats["n"] == 20
    assert stats["tail"]["dominant_phase"] == "commit_queue"
    assert stats["max_attribution_error"] <= 0.01
    assert set(stats["phases"]) <= set(PHASES)
    slowest = report.slowest(1)[0]
    assert slowest.trace_id == "R0:g19"
