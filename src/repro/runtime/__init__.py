"""Execution backends for the SI-Rep protocol: one protocol, two schedulers.

* ``make_runtime("sim")`` — the deterministic discrete-event simulator
  (:class:`repro.sim.Simulator`).
* ``make_runtime("wall")`` — :class:`AsyncioRuntime`: wall-clock timers,
  TCP sockets behind the Channel semantics, fsync-backed durability.

See :mod:`repro.runtime.api` for the kernel interface both implement.
"""

from repro.runtime.api import Runtime, make_runtime
from repro.runtime.asyncio_rt import AsyncioRuntime
from repro.runtime.tcpbus import TcpGroupBus, TcpGroupMember
from repro.runtime.tcpnet import TcpChannel, TcpChannelEnd, TcpHost, TcpNetwork

__all__ = [
    "Runtime",
    "make_runtime",
    "AsyncioRuntime",
    "TcpNetwork",
    "TcpHost",
    "TcpChannel",
    "TcpChannelEnd",
    "TcpGroupBus",
    "TcpGroupMember",
]
