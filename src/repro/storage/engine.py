"""The database replica: transactions, snapshot isolation, writesets.

One :class:`Database` is one replica.  Its concurrency semantics follow
paper §4's description of PostgreSQL:

* ``conflict_detection="locking"`` (default, §4): writers take row locks
  during execution and version-check on grant — *first-updater-wins*.
* ``conflict_detection="deferred"`` (§3's idealised DB): writes never
  block; write/write conflicts are checked atomically at commit.

All potentially blocking entry points (``execute``, ``commit``,
``apply_writeset``) are simulation coroutines (use ``yield from``).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, Iterator, Optional

from repro.errors import (
    IntegrityError,
    InvalidTransactionState,
    SerializationFailure,
    SQLError,
)
from repro.sim import Simulator
from repro.sim.resources import Resource
from repro.storage.catalog import Catalog, Table, TableSchema
from repro.storage.locks import LockManager
from repro.storage.versions import Version
from repro.storage.writeset import DELETE, INSERT, UPDATE, WriteOp, WriteSet
from repro.sql import executor as sql_executor
from repro.sql.parser import parse_cached

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"

LOCKING = "locking"
DEFERRED = "deferred"


class CostModel:
    """Service-time model hooks; subclass to calibrate (see bench.costs).

    Every hook returns ``(cpu_seconds, disk_seconds)`` charged against the
    replica's CPU/disk resources.
    """

    def statement(
        self, kind: str, rows_examined: int, rows_returned: int, rows_written: int
    ) -> tuple[float, float]:
        raise NotImplementedError

    def writeset_apply(self, n_ops: int) -> tuple[float, float]:
        raise NotImplementedError

    def commit(self, n_writes: int) -> tuple[float, float]:
        raise NotImplementedError


class NullCostModel(CostModel):
    """Zero-cost model: pure-correctness runs take no virtual time."""

    def statement(self, kind, rows_examined, rows_returned, rows_written):
        return (0.0, 0.0)

    def writeset_apply(self, n_ops):
        return (0.0, 0.0)

    def commit(self, n_writes):
        return (0.0, 0.0)


class Transaction:
    """A database-local transaction handle.

    ``gid`` is the cluster-wide identifier the middleware stamps on both
    the local execution and all remote writeset applications of one client
    transaction; standalone engine users get an auto-generated one.
    """

    _ids = itertools.count(1)

    __slots__ = (
        "xid",
        "gid",
        "snapshot_csn",
        "status",
        "remote",
        "writes",
        "write_order",
        "readset",
        "dependent_reads",
        "rows_examined",
        "db",
    )

    def __init__(self, db: "Database", gid: str, snapshot_csn: int, remote: bool):
        self.db = db
        self.xid = next(self._ids)
        self.gid = gid
        self.snapshot_csn = snapshot_csn
        self.status = ACTIVE
        self.remote = remote
        self.writes: dict[tuple[str, Any], WriteOp] = {}
        self.write_order: list[tuple[str, Any]] = []
        self.readset: set[tuple[str, Any]] = set()
        #: keys whose *values* fed into this transaction's writes or
        #: results — ``readset`` minus purely *locating* reads (the row
        #: lookup an UPDATE does just to find its target).  Certification
        #: salvage keys off this; the SI audit keeps using ``readset``.
        self.dependent_reads: set[tuple[str, Any]] = set()
        self.rows_examined = 0

    @property
    def active(self) -> bool:
        return self.status == ACTIVE

    def __repr__(self) -> str:
        return f"<Txn {self.gid} xid={self.xid} {self.status} snap={self.snapshot_csn}>"


class Database:
    """One replica: catalog + version store + lock manager + history."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "db",
        conflict_detection: str = LOCKING,
        cost_model: Optional[CostModel] = None,
        cpu: Optional[Resource] = None,
        disk: Optional[Resource] = None,
    ):
        if conflict_detection not in (LOCKING, DEFERRED):
            raise ValueError(f"bad conflict_detection {conflict_detection!r}")
        self.sim = sim
        self.name = name
        self.conflict_detection = conflict_detection
        self.cost_model = cost_model or NullCostModel()
        self.cpu = cpu
        self.disk = disk
        self.catalog = Catalog()
        self.locks = LockManager(name=f"{name}.rowlocks")
        self.csn = 0
        #: ordered begin/commit event log consumed by repro.si.recorder
        self.history: list[tuple] = []
        self.commits = 0
        self.aborts = 0
        #: defer first-updater-wins aborts for *blind* staged updates to
        #: global certification (set by salvage-enabled deployments: the
        #: certifier either refreshes the cert — re-homing the commit
        #: after its predecessor — or aborts, so deferring never commits
        #: a conflict the eager check would have caught)
        self.defer_blind_ww = False
        #: optional backpressure gate for the deferral: when set and
        #: returning False, blind stages fall back to the eager path
        #: (lock + first-updater check) so overload sheds via aborts
        self.defer_gate: Optional[Callable[[], bool]] = None
        self.deferred_ww = 0
        self._active: set[Transaction] = set()
        self._committed_gids: set[str] = set()

    # ------------------------------------------------------------------ DDL

    def create_table(self, schema: TableSchema) -> Table:
        return self.catalog.create_table(schema)

    def create_index(self, table: str, column: str) -> None:
        self.catalog.table(table).create_index(column)

    def run_ddl(self, sql: str) -> None:
        """Execute a CREATE TABLE/INDEX statement outside any transaction.

        Replicated deployments deliver DDL through the total-order channel
        so every replica applies it at the same logical point; it is
        non-transactional, like most DDL in practice.
        """
        from repro.sql import executor as sql_executor

        statement = parse_cached(sql)
        if statement.kind == "create_table":
            sql_executor._create_table(self, statement)
        elif statement.kind == "create_index":
            sql_executor._create_index(self, statement)
        else:
            raise SQLError(f"run_ddl only accepts CREATE statements: {sql!r}")

    def bulk_load(self, table_name: str, rows: Iterable[dict]) -> int:
        """Install initial rows outside any transaction (bootstrap only).

        Rows get csn 0 and are visible to every snapshot.  Only legal
        before the first commit, so replicas can be seeded identically
        without polluting the recorded schedule history.
        """
        if self.csn != 0:
            raise InvalidTransactionState("bulk_load only before first commit")
        table = self.catalog.table(table_name)
        count = 0
        for values in rows:
            row = table.schema.validate_row(values)
            pk = row[table.schema.pk_column]
            chain = table.ensure_chain(pk)
            if len(chain):
                raise IntegrityError(f"duplicate bulk key {pk!r} in {table_name!r}")
            chain.install(Version(0, row, writer="bulk"))
            table.index_insert(row)
            count += 1
        return count

    def explain(self, sql: str, params: tuple = ()) -> tuple:
        """The access path the executor will use for ``sql``.

        ``("pk", n)`` point lookups, ``("index", column, n)`` secondary
        index probes, or ``("scan",)``.  Diagnostics only; DDL and
        joined queries report the base table's path.
        """
        statement = parse_cached(sql)
        if statement.kind in ("create_table", "create_index"):
            return ("ddl",)
        if statement.kind == "insert":
            return ("pk", len(statement.rows))
        table = self.catalog.table(statement.table)
        alias = getattr(statement, "alias", None)
        where = statement.where
        return sql_executor.choose_path(table, alias, where, params)

    def has_committed(self, gid: str) -> bool:
        """Did a transaction with this global id commit here?  Used by a
        failing-over middleware to make writeset re-application
        idempotent (Fig. 3(b) takeover)."""
        return gid in self._committed_gids

    def abort_all_active(self) -> int:
        """Abort every active transaction.

        Models what a real DBMS does when the connections of a crashed
        middleware break: "upon connection loss, database systems abort
        the active transaction on the connection" (§5.1).
        """
        victims = list(self._active)
        for txn in victims:
            self.abort(txn)
        return len(victims)

    def vacuum(self) -> int:
        """Prune row versions no active snapshot can see (PostgreSQL's
        VACUUM).  Keeps, per row, the version visible at the oldest
        active snapshot and everything newer.  Returns versions removed.
        """
        if self._active:
            horizon = min(txn.snapshot_csn for txn in self._active)
        else:
            horizon = self.csn
        removed = 0
        for table in self.catalog.tables.values():
            for pk in list(table.rows.keys()):
                chain = table.rows[pk]
                versions = chain.versions
                keep_from = 0
                for i, version in enumerate(versions):
                    if version.csn <= horizon:
                        keep_from = i
                kept = versions[keep_from:]
                # a tombstone nobody can see anymore frees the whole row
                if len(kept) == 1 and kept[0].is_delete and kept[0].csn <= horizon:
                    removed += len(versions)
                    del table.rows[pk]
                    continue
                removed += len(versions) - len(kept)
                chain.versions = kept
        return removed

    def version_count(self) -> int:
        """Total stored versions across all tables (diagnostics)."""
        return sum(
            len(chain)
            for table in self.catalog.tables.values()
            for chain in table.rows.values()
        )

    def export_committed(self) -> dict[str, list[dict]]:
        """Latest committed row images per table (recovery state transfer).

        Captured atomically (no yields): this is the consistent state a
        donor replica ships to a recovering one at the sync point.
        """
        out: dict[str, list[dict]] = {}
        for name, table in self.catalog.tables.items():
            rows = []
            for chain in table.rows.values():
                latest = chain.latest()
                if latest is not None and latest.values is not None:
                    rows.append(dict(latest.values))
            out[name] = rows
        return out

    # ------------------------------------------------------------- recovery

    def install_writeset(self, gid: str, ops: Iterable[WriteOp]) -> Optional[int]:
        """Install a certified writeset's after-images directly from a
        durable log record (replay path — no transaction, no locks, no
        history events, no cost charges).

        Replay happens before the replica serves traffic, so there are no
        concurrent snapshots to respect: each record bumps the csn and
        installs its images, exactly as the original commit did.
        Idempotent per gid, mirroring :meth:`has_committed`.
        """
        if gid in self._committed_gids:
            return None
        ops = list(ops)
        csn: Optional[int] = None
        if ops:
            self.csn += 1
            csn = self.csn
            for op in ops:
                table = self.catalog.table(op.table)
                chain = table.ensure_chain(op.pk)
                chain.install(Version(csn, op.values, writer=gid))
                if op.values is not None:
                    table.index_insert(op.values)
        self._committed_gids.add(gid)
        self.commits += 1
        return csn

    def load_checkpoint(self, rows: dict, csn: int) -> None:
        """Restore committed state from a checkpoint (fresh replicas only).

        Every row is installed as one version at the checkpoint's ``csn``
        and the engine resumes from there, so subsequent log replay
        installs at strictly increasing csns.  The caller has already run
        the checkpoint's DDL.
        """
        if self.csn != 0 or self.commits or self._active:
            raise InvalidTransactionState(
                "load_checkpoint only into a fresh database"
            )
        for table_name, table_rows in rows.items():
            table = self.catalog.table(table_name)
            for values in table_rows:
                row = table.schema.validate_row(values)
                pk = row[table.schema.pk_column]
                chain = table.ensure_chain(pk)
                if len(chain):
                    raise IntegrityError(
                        f"duplicate checkpoint key {pk!r} in {table_name!r}"
                    )
                chain.install(Version(csn, row, writer="checkpoint"))
                table.index_insert(row)
        self.csn = csn

    # ------------------------------------------------------- transaction API

    def begin(self, gid: Optional[str] = None, remote: bool = False) -> Transaction:
        """Start a transaction on the current snapshot (never blocks).

        Taking the snapshot and reading ``self.csn`` happen atomically
        w.r.t. commits because the kernel is cooperative and ``begin``
        never yields — the role of SRCA's ``dbmutex``.
        """
        txn = Transaction(
            self,
            gid=gid or f"{self.name}:t{next(Transaction._ids)}",
            snapshot_csn=self.csn,
            remote=remote,
        )
        self._active.add(txn)
        # the trailing sim timestamp is appended LAST so positional
        # consumers of the older 4-tuple shape keep working
        self.history.append(
            ("begin", txn.gid, txn.snapshot_csn, remote, self.sim.now)
        )
        return txn

    def _check_active(self, txn: Transaction) -> None:
        if txn.status != ACTIVE:
            raise InvalidTransactionState(f"{txn!r} is not active")

    def execute(
        self, txn: Transaction, sql: str, params: tuple = ()
    ) -> Generator[Any, Any, "sql_executor.Result"]:
        """Run one SQL statement inside ``txn`` (may block on row locks)."""
        self._check_active(txn)
        statement = parse_cached(sql)
        try:
            result = yield from sql_executor.execute(self, txn, statement, params)
        except Exception:
            # Statement failure poisons the transaction, like PostgreSQL.
            self.abort(txn)
            raise
        yield from self._charge(
            self.cost_model.statement(
                statement.kind,
                result.rows_examined,
                result.rowcount,
                result.rows_written,
            )
        )
        return result

    def charge_commit(self, n_writes: int) -> Generator[Any, Any, None]:
        """Charge the commit-time cost (the fsync-equivalent) alone.

        The group-commit path pays this once for a run of transactions
        and then installs each with ``commit(txn, charge=False)``.
        """
        yield from self._charge(self.cost_model.commit(n_writes))

    def commit(
        self, txn: Transaction, charge: bool = True
    ) -> Generator[Any, Any, Optional[int]]:
        """Commit ``txn``; returns the csn (None for read-only commits).

        In ``deferred`` mode this performs the write/write conflict check
        the idealised DB of §3 does at commit time.  ``charge=False``
        skips the commit-cost charge — the caller already paid it through
        :meth:`charge_commit` (group commit).
        """
        self._check_active(txn)
        if charge:
            yield from self.charge_commit(len(txn.writes))
        # the transaction may have been aborted while the commit work was
        # queued (e.g. abort_all_active after a middleware crash)
        self._check_active(txn)
        # From here on: no yields — install is atomic.
        if self.conflict_detection == DEFERRED:
            for key in txn.write_order:
                table = self.catalog.table(key[0])
                chain = table.chain(key[1])
                latest = chain.latest() if chain else None
                if latest is not None and latest.csn > txn.snapshot_csn:
                    self.abort(txn)
                    raise SerializationFailure(
                        f"{txn.gid}: commit-time conflict on {key!r}"
                    )
        csn: Optional[int] = None
        if txn.writes:
            self.csn += 1
            csn = self.csn
            for key in txn.write_order:
                op = txn.writes[key]
                table = self.catalog.table(op.table)
                chain = table.ensure_chain(op.pk)
                chain.install(Version(csn, op.values, writer=txn.gid))
                if op.values is not None:
                    table.index_insert(op.values)
        txn.status = COMMITTED
        self._active.discard(txn)
        self._committed_gids.add(txn.gid)
        self.history.append(
            (
                "commit",
                txn.gid,
                csn,
                frozenset(txn.readset),
                frozenset(txn.writes),
                self.sim.now,
            )
        )
        self.commits += 1
        self.locks.release_all(txn)
        return csn

    def abort(self, txn: Transaction) -> None:
        """Roll back: drop staged writes, release locks (never blocks)."""
        if txn.status == ABORTED:
            return
        if txn.status == COMMITTED:
            raise InvalidTransactionState(f"{txn!r} already committed")
        txn.status = ABORTED
        self._active.discard(txn)
        self.aborts += 1
        self.locks.release_all(txn)

    # ------------------------------------------------------- writeset module

    def get_writeset(self, txn: Transaction) -> WriteSet:
        """Pre-commit writeset retrieval (the paper's extension)."""
        self._check_active(txn)
        return WriteSet([txn.writes[key] for key in txn.write_order])

    def apply_writeset(
        self, txn: Transaction, writeset: WriteSet, charge: bool = True
    ) -> Generator[Any, Any, None]:
        """Replay a remote transaction's after images inside ``txn``.

        May block on locks held by local transactions and may raise
        :class:`SerializationFailure`/:class:`DeadlockDetected`; the
        middleware retries with a fresh transaction until it succeeds
        (§4.2 "the middleware has to reapply the writeset").

        ``charge=False`` skips the apply CPU charge — for re-homed HOME
        commits whose statements this replica already executed.
        """
        self._check_active(txn)
        for op in writeset:
            yield from self._lock_and_check(txn, op.table, op.pk)
            self._stage(txn, op)
        if charge:
            yield from self._charge(
                self.cost_model.writeset_apply(len(writeset))
            )

    # -------------------------------------------------- executor entry points

    def read_row(
        self, txn: Transaction, table: Table, pk: Any, locating: bool = False
    ) -> Optional[dict[str, Any]]:
        """Snapshot read of one row (plus read-your-own-writes).

        ``locating`` marks reads done only to *find* a write's target row
        (UPDATE/DELETE row lookup): they join ``readset`` (the SI audit
        sees every read) but not ``dependent_reads``, so a blind write
        doesn't count its own target lookup as a value dependency.
        """
        key = (table.name, pk)
        if key in txn.writes:
            op = txn.writes[key]
            txn.readset.add(key)
            if not locating:
                txn.dependent_reads.add(key)
            return op.values
        chain = table.chain(pk)
        if chain is None:
            return None
        values = chain.visible_values(txn.snapshot_csn)
        if values is not None:
            txn.readset.add(key)
            if not locating:
                txn.dependent_reads.add(key)
        return values

    def scan(
        self, txn: Transaction, table: Table, candidates: Optional[Iterable[Any]] = None
    ) -> Iterator[tuple[Any, dict[str, Any]]]:
        """Iterate visible rows (candidate pks, or the whole table)."""
        if candidates is None:
            pks: Iterable[Any] = list(table.rows.keys())
            own = [
                op.pk
                for key, op in txn.writes.items()
                if key[0] == table.name and key[1] not in table.rows
            ]
            if own:
                pks = list(pks) + own
        else:
            pks = candidates
        for pk in pks:
            txn.rows_examined += 1
            values = self.read_row(txn, table, pk)
            if values is not None:
                yield pk, values

    def stage_insert(
        self, txn: Transaction, table: Table, values: dict[str, Any]
    ) -> Generator[Any, Any, None]:
        row = table.schema.validate_row(values)
        pk = row[table.schema.pk_column]
        key = (table.name, pk)
        if key in txn.writes and txn.writes[key].values is not None:
            raise IntegrityError(f"duplicate key {pk!r} in {table.name!r}")
        yield from self._lock_and_check(txn, table.name, pk)
        latest = self._latest(table, pk)
        if latest is not None and not latest.is_delete:
            self.abort(txn)
            raise IntegrityError(f"duplicate key {pk!r} in {table.name!r}")
        self._check_foreign_keys(txn, table, row)
        self._stage(txn, WriteOp(table.name, pk, INSERT, row))

    def stage_update(
        self, txn: Transaction, table: Table, pk: Any,
        new_values: dict[str, Any], blind: bool = False,
    ) -> Generator[Any, Any, None]:
        row = table.schema.validate_row(new_values)
        yield from self._lock_and_check(txn, table.name, pk, blind=blind)
        self._check_foreign_keys(txn, table, row)
        previous = txn.writes.get((table.name, pk))
        op = INSERT if previous is not None and previous.op == INSERT else UPDATE
        self._stage(txn, WriteOp(table.name, pk, op, row))

    def stage_delete(
        self, txn: Transaction, table: Table, pk: Any
    ) -> Generator[Any, Any, None]:
        yield from self._lock_and_check(txn, table.name, pk)
        self._check_no_referencing_rows(txn, table, pk)
        self._stage(txn, WriteOp(table.name, pk, DELETE, None))

    def _check_foreign_keys(
        self, txn: Transaction, table: Table, row: dict[str, Any]
    ) -> None:
        """Child-side FK check: every non-NULL reference must resolve.

        Checked at the *local* replica under the transaction's snapshot
        (remote writeset application trusts the certified after-images).
        Like any SI scheme that certifies only writes, a cross-replica
        delete/insert race on a parent row is not detected — the paper's
        "only conflicts between write operations are detected" caveat.
        """
        for column, parent_name in table.schema.foreign_keys:
            value = row[column]
            if value is None:
                continue
            parent = self.catalog.table(parent_name)
            if self.read_row(txn, parent, value) is None:
                self.abort(txn)
                raise IntegrityError(
                    f"{table.name}.{column}={value!r} references no row "
                    f"in {parent_name!r}"
                )

    def _check_no_referencing_rows(
        self, txn: Transaction, table: Table, pk: Any
    ) -> None:
        """Parent-side FK check (NO ACTION): reject the delete if any
        visible child row still references it."""
        for child_name, column in self.catalog.referencers.get(table.name, ()):
            child = self.catalog.table(child_name)
            candidates = child.index_candidates(column, pk)
            for _child_pk, values in self.scan(txn, child, candidates=candidates):
                if values[column] == pk:
                    self.abort(txn)
                    raise IntegrityError(
                        f"cannot delete {table.name}[{pk!r}]: referenced by "
                        f"{child_name}.{column}"
                    )

    # ----------------------------------------------------------- internals

    def _latest(self, table: Table, pk: Any) -> Optional[Version]:
        chain = table.chain(pk)
        return chain.latest() if chain else None

    def committed_after_snapshot(self, key: tuple, snapshot_csn: int) -> bool:
        """True iff ``key``'s newest committed version postdates the
        snapshot.  The middleware's commit-time re-check for blind staged
        updates that skipped the eager first-updater check under
        ``defer_blind_ww``: a hit means a concurrent writer committed in
        our lifetime, so committing the original local handle in place
        would record an SI-ww anomaly — the commit must re-home."""
        table_name, pk = key
        latest = self._latest(self.catalog.table(table_name), pk)
        return latest is not None and latest.csn > snapshot_csn

    def _lock_and_check(
        self, txn: Transaction, table_name: str, pk: Any, blind: bool = False
    ) -> Generator[Any, Any, None]:
        """Lock the row, then first-updater-wins version check (§4).

        In ``deferred`` mode both steps are skipped: conflicts are found
        at commit.  With ``defer_blind_ww`` a *blind* staged update skips
        both too: the write owes the row nothing, so the lock (which
        would convoy local writers behind a full certification round
        trip) protects nothing, and the middleware re-checks the version
        at commit time — any transaction that raced a concurrent writer
        is then re-homed behind it or aborted by certification, never
        committed in place.
        """
        if self.conflict_detection == DEFERRED:
            return
        if blind and self.defer_blind_ww and (
            self.defer_gate is None or self.defer_gate()
        ):
            self.deferred_ww += 1
            return
        key = (table_name, pk)
        try:
            yield from self.locks.acquire(txn, key)
        except Exception:
            self.abort(txn)
            raise
        if key in txn.writes:
            return  # own earlier write: no re-check
        table = self.catalog.table(table_name)
        latest = self._latest(table, pk)
        if latest is not None and latest.csn > txn.snapshot_csn:
            self.abort(txn)
            raise SerializationFailure(
                f"{txn.gid}: row {key!r} updated by concurrent committed txn"
            )

    def _stage(self, txn: Transaction, op: WriteOp) -> None:
        key = op.key
        if key not in txn.writes:
            txn.write_order.append(key)
        txn.writes[key] = op

    def _charge(self, cost: tuple[float, float]) -> Generator[Any, Any, None]:
        cpu_time, disk_time = cost
        if self.cpu is not None and cpu_time > 0:
            yield from self.cpu.use(cpu_time)
        if self.disk is not None and disk_time > 0:
            yield from self.disk.use(disk_time)

    # ----------------------------------------------------------- diagnostics

    @property
    def active_count(self) -> int:
        return len(self._active)

    def table_row_count(self, table: str, snapshot: Optional[int] = None) -> int:
        """Committed visible rows (diagnostics / tests)."""
        snap = self.csn if snapshot is None else snapshot
        t = self.catalog.table(table)
        return sum(
            1 for chain in t.rows.values() if chain.visible_values(snap) is not None
        )
