"""Online 1-copy-SI monitor (repro.obs.monitor).

Unit tests drive :meth:`OneCopyMonitor.poll` by hand over fake
``db.history`` lists (the monitor only reads ``sim.now`` outside the
daemon), one per violation kind; the integration test replays the
batched §4.3.2 Ta/Tb scenario from the conformance kit and checks the
monitor flags the constraint cycle *online*, at the poll where it closes
and with the offending event's sim timestamp — not at end of run.
"""

import pytest

from repro.client import Driver
from repro.core import ClusterConfig, SIRepCluster
from repro.gcs import GcsConfig
from repro.obs import OneCopyMonitor
from repro.storage.engine import CostModel


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeDb:
    def __init__(self):
        self.history = []


def begin(gid, remote, t, csn=0):
    return ("begin", gid, csn, remote, t)


def commit(gid, t, readset=(), writeset=(), csn=1):
    return ("commit", gid, csn, frozenset(readset), frozenset(writeset), t)


@pytest.fixture
def env():
    sim = FakeSim()
    monitor = OneCopyMonitor(sim, loss_grace=5.0)
    dbs = {name: FakeDb() for name in ("R0", "R1")}
    for name, db in dbs.items():
        monitor.watch(name, db)
    return sim, monitor, dbs


def test_silent_on_consistent_histories(env):
    sim, monitor, dbs = env
    for db in dbs.values():
        db.history += [
            begin("g1", remote=False, t=0.0),
            commit("g1", 0.1, writeset={("kv", 1)}),
            begin("g2", remote=False, t=0.2),
            commit("g2", 0.3, readset={("kv", 1)}, writeset={("kv", 1)}),
        ]
    sim.now = 0.5
    assert monitor.poll() == []
    assert monitor.ok and not monitor.tripped
    summary = monitor.summary()
    assert summary["polls"] == 1
    assert summary["watched"] == ["R0", "R1"]
    assert summary["transactions"] == 2


def test_ww_order_disagreement_flagged_once(env):
    sim, monitor, dbs = env
    ws = {("kv", 1)}
    dbs["R0"].history += [
        commit("g1", 0.1, writeset=ws),
        commit("g2", 0.2, writeset=ws),
    ]
    dbs["R1"].history += [
        commit("g2", 0.1, writeset=ws),
        commit("g1", 0.2, writeset=ws),
    ]
    sim.now = 0.3
    new = monitor.poll()
    assert [v.kind for v in new] == ["ww-order"]
    assert set(new[0].gids) == {"g1", "g2"}
    assert new[0].at == 0.3
    assert not monitor.ok
    # the disagreement persists in the histories: never re-emitted
    sim.now = 0.4
    assert monitor.poll() == []
    assert len(monitor.violations) == 1


def test_rowa_divergent_writesets_flagged(env):
    sim, monitor, dbs = env
    dbs["R0"].history.append(commit("g1", 0.1, writeset={("kv", 1)}))
    dbs["R1"].history.append(commit("g1", 0.2, writeset={("kv", 2)}))
    sim.now = 0.3
    new = monitor.poll()
    assert [v.kind for v in new] == ["rowa"]
    assert new[0].gids == ("g1",)
    assert monitor.poll() == []


def test_lost_writeset_after_grace_window(env):
    sim, monitor, dbs = env
    dbs["R0"].history.append(commit("g1", 0.1, writeset={("kv", 1)}))
    sim.now = 1.0  # within grace: missing at R1 is just propagation lag
    assert monitor.poll() == []
    sim.now = 6.0  # 0.1 + loss_grace exceeded
    new = monitor.poll()
    assert [v.kind for v in new] == ["lost-writeset"]
    assert new[0].offending_t == 0.1
    assert "missing at R1" in new[0].detail
    sim.now = 7.0
    assert monitor.poll() == []  # deduped per (gid, replica)


def test_constraint_cycle_trips_one_copy_si(env):
    """The §4.3.2 shape, hand-fed: each replica commits its own writer
    first, and each local reader begins in the window where only the
    local write is visible — the four reads-from edges close a cycle."""
    sim, monitor, dbs = env
    dbs["R0"].history += [
        commit("g1", 0.10, writeset={("kv", 1)}),
        begin("Ta", remote=False, t=0.25),
        commit("Ta", 0.26, readset={("kv", 1), ("kv", 2)}),
        commit("g2", 0.60, writeset={("kv", 2)}),
    ]
    dbs["R1"].history += [
        commit("g2", 0.10, writeset={("kv", 2)}),
        begin("Tb", remote=False, t=0.25),
        commit("Tb", 0.26, readset={("kv", 1), ("kv", 2)}),
        commit("g1", 0.60, writeset={("kv", 1)}),
    ]
    sim.now = 0.7
    new = monitor.poll()
    assert [v.kind for v in new] == ["one-copy-si"]
    assert monitor.tripped
    violation = new[0]
    assert set(violation.gids) >= {"g1", "g2"}
    # anchored on the latest event in the cycle, not on poll time
    assert violation.offending_t <= 0.6 < violation.at
    # the latch holds: the same cycle is not re-reported
    sim.now = 0.8
    assert monitor.poll() == []
    assert monitor.summary()["tripped"] is True


def test_unwatch_rebuilds_without_reemitting(env):
    sim, monitor, dbs = env
    ws = {("kv", 1)}
    dbs["R0"].history += [commit("g1", 0.1, writeset=ws), commit("g2", 0.2, writeset=ws)]
    dbs["R1"].history += [commit("g2", 0.1, writeset=ws), commit("g1", 0.2, writeset=ws)]
    sim.now = 0.3
    assert [v.kind for v in monitor.poll()] == ["ww-order"]
    monitor.unwatch("R1")  # e.g. the replica crashed
    assert monitor.summary()["watched"] == ["R0"]
    sim.now = 0.4
    assert monitor.poll() == []  # rebuild kept the dedup state
    assert len(monitor.violations) == 1
    # and the surviving replica's events were replayed, not dropped
    assert monitor.summary()["transactions"] == 2


def test_retried_remote_apply_uses_last_begin(env):
    """A remote writeset apply can begin, deadlock-abort, and begin
    again; only the begin that leads to the commit counts."""
    sim, monitor, dbs = env
    dbs["R0"].history += [
        begin("g1", remote=True, t=0.1),
        begin("g1", remote=True, t=0.3),  # retry
        commit("g1", 0.4, writeset={("kv", 1)}),
    ]
    dbs["R1"].history += [
        begin("g1", remote=True, t=0.1),
        commit("g1", 0.2, writeset={("kv", 1)}),
    ]
    sim.now = 0.5
    assert monitor.poll() == []
    assert monitor.ok


def test_saturation_stops_checking(env):
    sim, monitor, dbs = env
    monitor.max_txns = 2
    for i in range(4):
        dbs["R0"].history.append(commit(f"g{i}", 0.1 * i, writeset={("kv", i)}))
    sim.now = 1.0
    monitor.poll()
    assert monitor.saturated
    assert monitor.poll() == []  # no further work once saturated
    assert monitor.summary()["saturated"] is True


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        OneCopyMonitor(FakeSim(), interval=0.0)


# ---------------------------------------------------------------------------
# Integration: the batched §4.3.2 anomaly, caught online
# ---------------------------------------------------------------------------


class SlowApply(CostModel):
    """Writeset application is slow; everything else instantaneous."""

    def statement(self, kind, rows_examined, rows_returned, rows_written):
        return (0.0, 0.0)

    def writeset_apply(self, n_ops):
        return (0.5, 0.0)

    def commit(self, n_writes):
        return (0.0, 0.0)


def run_batched_scenario(hole_sync):
    """The conformance kit's §4.3.2 recipe with the monitor attached:
    both writesets travel in one batch, SRCA-Opt commits each writer's
    own update early, and the t=0.25 readers observe the anomaly."""
    cluster = SIRepCluster(
        ClusterConfig(
            n_replicas=2,
            hole_sync=hole_sync,
            seed=7,
            gcs=GcsConfig(batch_max_messages=2, batch_window=0.2),
            cost_model=lambda i: SlowApply(),
            monitor=True,
            monitor_interval=0.05,
            flight=True,
        )
    )
    sim = cluster.sim
    cluster.load_schema(["CREATE TABLE kv (k INT PRIMARY KEY, v INT)"])
    cluster.bulk_load("kv", [{"k": 1, "v": 0}, {"k": 2, "v": 0}])
    driver = Driver(cluster.network, cluster.discovery)

    def writer(address, key, value, delay):
        yield sim.sleep(delay)
        conn = yield from driver.connect(cluster.new_client_host(), address=address)
        yield from conn.execute("UPDATE kv SET v = ? WHERE k = ?", (value, key))
        yield from conn.commit()

    def reader(address, delay):
        yield sim.sleep(delay)
        conn = yield from driver.connect(cluster.new_client_host(), address=address)
        yield from conn.execute("SELECT k, v FROM kv ORDER BY k")
        yield from conn.commit()

    sim.spawn(writer("R0", 1, 11, 0.00), name="Ti")
    sim.spawn(writer("R1", 2, 22, 0.05), name="Tj")
    sim.spawn(reader("R0", 0.25), name="Ta")
    sim.spawn(reader("R1", 0.25), name="Tb")
    sim.run()
    sim.run(until=sim.now + 3.0)
    return cluster


def test_monitor_flags_batched_anomaly_online():
    cluster = run_batched_scenario(hole_sync=False)
    assert cluster.monitor.tripped
    flagged = [v for v in cluster.monitor.violations if v.kind == "one-copy-si"]
    assert len(flagged) == 1
    violation = flagged[0]
    # the readers begin at t=0.25; the cycle's latest event is one of
    # their begins/the early commits — well before the ~1.1s end of run
    assert 0.25 <= violation.offending_t <= violation.at
    assert violation.at < cluster.sim.now  # flagged DURING the run
    assert len(violation.gids) >= 4  # Ti, Tj, Ta, Tb
    # the post-hoc auditor agrees
    assert not cluster.one_copy_report().ok
    # the flight recorder snapped the violation as it happened
    reasons = [snap["reason"] for snap in cluster.flight.snapshots]
    assert "monitor:one-copy-si" in reasons
    cluster.stop()


def test_monitor_silent_when_hole_sync_on():
    cluster = run_batched_scenario(hole_sync=True)
    assert cluster.monitor.ok
    assert not cluster.monitor.tripped
    assert cluster.monitor.summary()["violations"] == []
    assert cluster.monitor.polls > 0  # the daemon actually ran
    assert cluster.one_copy_report().ok
    cluster.stop()
