"""The paper's quantified side claims, each regenerated and asserted."""

import pytest

from repro.bench import figures


def test_writeset_apply_fraction(benchmark):
    """§6.3: "Applying writesets takes only around 20% of the time it
    takes to execute the entire transaction." """
    result = benchmark.pedantic(
        figures.claim_writeset_apply_fraction, rounds=1, iterations=1
    )
    assert 0.15 <= result["fraction"] <= 0.25


def test_tpcw_abort_rate(benchmark):
    """§6.1: conflict rates were small, "very few aborts took place (far
    below 1%)"."""
    result = benchmark.pedantic(
        lambda: figures.claim_tpcw_abort_rate(fast=True), rounds=1, iterations=1
    )
    assert result["abort_rate"] < 0.01


def test_hole_frequency(benchmark):
    """§6.3: "there are holes at around 4-8% of the times a transaction
    wants to start" under the update-intensive workload."""
    result = benchmark.pedantic(
        lambda: figures.claim_hole_frequency(fast=True), rounds=1, iterations=1
    )
    assert 0.01 <= result["hole_wait_fraction"] <= 0.15


def test_postgres_r_si_comparison(benchmark):
    """§6.3: "We tested the system against Postgres-R [which] provides
    kernel-based eager replication.  The results were very similar to
    SRCA-Rep since their main difference lies in the validation process
    while the principal transaction execution is similar." """
    from repro.bench.costs import MicroCost
    from repro.bench.harness import run_kernel, run_sirep
    from repro.workloads import micro

    def run():
        workload = micro.make_workload()
        out = []
        for load in (50, 125):
            rep = run_sirep(
                workload, load, n_replicas=5, cost_model=MicroCost,
                duration=6.0, warmup=1.5,
            )
            kern = run_kernel(
                workload, load, n_replicas=5, cost_model=MicroCost,
                duration=6.0, warmup=1.5,
            )
            out.append((rep, kern))
        return out

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    for rep, kern in pairs:
        # "very similar": response times within ~25% and throughput ~10%
        assert kern.rt("update") == pytest.approx(rep.rt("update"), rel=0.25)
        assert kern.throughput == pytest.approx(rep.throughput, rel=0.10)


def test_multicast_latency(benchmark):
    """§5.2: "the delay for a uniform reliable multicast does not exceed
    3 ms in a LAN even for message rates of several hundreds of messages
    per second"."""
    result = benchmark.pedantic(
        lambda: figures.claim_multicast_latency(500), rounds=1, iterations=1
    )
    assert result["messages"] >= 400
    assert result["max_ms"] <= 3.0
